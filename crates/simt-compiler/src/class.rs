//! The abstract domain of the redundancy analysis.
//!
//! Each register is tracked along two independent dimensions (paper
//! Section 2's taxonomy):
//!
//! * **redundancy** — is the whole 32-lane vector identical in every warp of
//!   the threadblock? (`Redundant` / `CondRedundant` / `NotRedundant`)
//! * **pattern** — what shape do the lane values have within a warp?
//!   (`Uniform` scalar, `Affine` base+stride over the lane index, or
//!   `Arbitrary`)
//!
//! The product recovers the paper's taxonomy:
//!
//! | redundancy | pattern | paper class |
//! |---|---|---|
//! | `Redundant` | `Uniform` | uniform redundant |
//! | `Redundant` | `Affine` | affine redundant |
//! | `Redundant` | `Arbitrary` | unstructured redundant |
//! | `NotRedundant` | `Affine` | TB-affine (1D `tid.x`; DAC removes it, DARSIE does not) |
//! | `NotRedundant` | `Arbitrary` | true vector |

use simt_isa::Marking;
use std::fmt;

/// Cross-warp redundancy of a register across the threadblock.
///
/// Total order
/// `NotRedundant < CondRedundantXY < CondRedundant < Redundant`;
/// the meet of two values is the minimum (weakest wins, paper Section 4.2).
/// `CondRedundantXY` carries the 3D-TB extension: values derived from
/// `tid.y` need *both* the x and y launch-time checks to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Red {
    /// Differs between warps (or unknown).
    NotRedundant,
    /// Redundant iff both the x- and y-dimension launch checks pass.
    CondRedundantXY,
    /// Redundant iff the x-dimension launch-time TB check passes.
    CondRedundant,
    /// Identical vector in every warp of the TB, for any launch.
    Redundant,
}

impl Red {
    /// Lattice meet (minimum).
    #[must_use]
    pub fn meet(self, other: Red) -> Red {
        self.min(other)
    }

    /// Applies the launch-time promotion decisions: conditionally redundant
    /// becomes definitely redundant when the relevant check(s) pass,
    /// otherwise vector. `promoted_x` is the paper's 2D check
    /// ([`LaunchConfig::promotes_conditional_redundancy`]); `promoted_y`
    /// the 3D extension's additional check.
    ///
    /// [`LaunchConfig::promotes_conditional_redundancy`]:
    ///     simt_isa::LaunchConfig::promotes_conditional_redundancy
    #[must_use]
    pub fn finalize(self, promoted_x: bool, promoted_y: bool) -> Red {
        let promote = |ok: bool| if ok { Red::Redundant } else { Red::NotRedundant };
        match self {
            Red::CondRedundant => promote(promoted_x),
            Red::CondRedundantXY => promote(promoted_x && promoted_y),
            other => other,
        }
    }
}

/// Intra-warp lane pattern of a register.
///
/// Total order `Arbitrary < Affine < Uniform` (uniform is the special case
/// of affine with stride zero); meet is the minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pat {
    /// No known structure.
    Arbitrary,
    /// `base + stride * lane` for some (unknown) base and stride.
    Affine,
    /// Same scalar in every lane.
    Uniform,
}

impl Pat {
    /// Lattice meet (minimum).
    #[must_use]
    pub fn meet(self, other: Pat) -> Pat {
        self.min(other)
    }

    /// Pattern of a *linear* combination (`a + b`, `a - b`): affine is
    /// closed under addition.
    #[must_use]
    pub fn linear(self, other: Pat) -> Pat {
        self.meet(other)
    }

    /// Pattern of a *product* (`a * b`, shifts by non-uniform amounts):
    /// affine times uniform stays affine, affine times affine does not
    /// (quadratic in the lane index).
    #[must_use]
    pub fn product(self, other: Pat) -> Pat {
        match (self, other) {
            (Pat::Uniform, Pat::Uniform) => Pat::Uniform,
            (Pat::Uniform, Pat::Affine) | (Pat::Affine, Pat::Uniform) => Pat::Affine,
            _ => Pat::Arbitrary,
        }
    }

    /// Pattern of a non-linear op (comparisons, logic, transcendental,
    /// loads): uniform inputs give uniform outputs, anything else is
    /// arbitrary.
    #[must_use]
    pub fn opaque(self, other: Pat) -> Pat {
        if self == Pat::Uniform && other == Pat::Uniform {
            Pat::Uniform
        } else {
            Pat::Arbitrary
        }
    }
}

/// Abstract class of a register: redundancy × pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbsClass {
    /// Cross-warp redundancy.
    pub red: Red,
    /// Intra-warp pattern.
    pub pat: Pat,
}

impl AbsClass {
    /// Definitely redundant uniform value (constants, `ctaid`, params...).
    pub const UNIFORM: AbsClass = AbsClass { red: Red::Redundant, pat: Pat::Uniform };
    /// Conditionally redundant affine value (`tid.x`).
    pub const COND_AFFINE: AbsClass = AbsClass { red: Red::CondRedundant, pat: Pat::Affine };
    /// True vector value (bottom of the lattice).
    pub const VECTOR: AbsClass = AbsClass { red: Red::NotRedundant, pat: Pat::Arbitrary };
    /// Top of the lattice (identity for meet at CFG joins).
    pub const TOP: AbsClass = AbsClass { red: Red::Redundant, pat: Pat::Uniform };

    /// Component-wise lattice meet.
    #[must_use]
    pub fn meet(self, other: AbsClass) -> AbsClass {
        AbsClass { red: self.red.meet(other.red), pat: self.pat.meet(other.pat) }
    }

    /// The [`Marking`] this class implies for the instruction that produced
    /// it.
    #[must_use]
    pub fn marking(self) -> Marking {
        match self.red {
            Red::Redundant => Marking::Redundant,
            Red::CondRedundant | Red::CondRedundantXY => Marking::ConditionallyRedundant,
            Red::NotRedundant => Marking::Vector,
        }
    }

    /// Applies the launch-time promotion decisions to the redundancy
    /// dimension.
    #[must_use]
    pub fn finalize(self, promoted_x: bool, promoted_y: bool) -> AbsClass {
        AbsClass { red: self.red.finalize(promoted_x, promoted_y), pat: self.pat }
    }

    /// Paper taxonomy bucket after launch-time finalization.
    #[must_use]
    pub fn taxonomy(self) -> Taxonomy {
        match (self.red, self.pat) {
            (Red::NotRedundant, _) => Taxonomy::NonRedundant,
            (_, Pat::Uniform) => Taxonomy::Uniform,
            (_, Pat::Affine) => Taxonomy::Affine,
            (_, Pat::Arbitrary) => Taxonomy::Unstructured,
        }
    }

    /// True when DAC (decoupled affine computation) would place the
    /// producing instruction on its affine stream: any uniform or affine
    /// value, redundant or not.
    #[must_use]
    pub fn is_dac_affine(self) -> bool {
        self.pat != Pat::Arbitrary
    }

    /// True when UV (uniform-vector) would eliminate the producing
    /// instruction: TB-uniform values only.
    #[must_use]
    pub fn is_uv_uniform(self) -> bool {
        self.red == Red::Redundant && self.pat == Pat::Uniform
    }
}

impl Default for AbsClass {
    fn default() -> AbsClass {
        AbsClass::VECTOR
    }
}

/// The paper's redundancy taxonomy buckets (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Taxonomy {
    /// Uniform redundant.
    Uniform,
    /// Affine redundant.
    Affine,
    /// Unstructured redundant.
    Unstructured,
    /// Not TB-redundant.
    NonRedundant,
}

impl Taxonomy {
    /// All buckets, in the order the paper's figures stack them.
    pub const ALL: [Taxonomy; 4] =
        [Taxonomy::Uniform, Taxonomy::Affine, Taxonomy::Unstructured, Taxonomy::NonRedundant];

    /// True for any of the three redundant buckets.
    #[must_use]
    pub fn is_redundant(self) -> bool {
        self != Taxonomy::NonRedundant
    }
}

impl fmt::Display for Taxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Taxonomy::Uniform => "uniform",
            Taxonomy::Affine => "affine",
            Taxonomy::Unstructured => "unstructured",
            Taxonomy::NonRedundant => "non-redundant",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_meet_is_weakest() {
        assert_eq!(Red::Redundant.meet(Red::CondRedundant), Red::CondRedundant);
        assert_eq!(Red::CondRedundant.meet(Red::NotRedundant), Red::NotRedundant);
        assert_eq!(Red::Redundant.meet(Red::Redundant), Red::Redundant);
    }

    #[test]
    fn red_finalize_promotion() {
        assert_eq!(Red::CondRedundant.finalize(true, false), Red::Redundant);
        assert_eq!(Red::CondRedundant.finalize(false, true), Red::NotRedundant);
        assert_eq!(Red::Redundant.finalize(false, false), Red::Redundant);
        assert_eq!(Red::NotRedundant.finalize(true, true), Red::NotRedundant);
        assert_eq!(Red::CondRedundantXY.finalize(true, false), Red::NotRedundant);
        assert_eq!(Red::CondRedundantXY.finalize(true, true), Red::Redundant);
    }

    #[test]
    fn red_finalize_commutes_with_meet() {
        use Red::*;
        let all = [NotRedundant, CondRedundantXY, CondRedundant, Redundant];
        for px in [false, true] {
            for py in [false, true] {
                for a in all {
                    for b in all {
                        assert_eq!(
                            a.meet(b).finalize(px, py),
                            a.finalize(px, py).meet(b.finalize(px, py)),
                            "{a:?} {b:?} {px} {py}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pat_algebra() {
        assert_eq!(Pat::Affine.linear(Pat::Affine), Pat::Affine);
        assert_eq!(Pat::Affine.linear(Pat::Uniform), Pat::Affine);
        assert_eq!(Pat::Uniform.linear(Pat::Uniform), Pat::Uniform);
        assert_eq!(Pat::Affine.product(Pat::Affine), Pat::Arbitrary, "quadratic in lane");
        assert_eq!(Pat::Affine.product(Pat::Uniform), Pat::Affine);
        assert_eq!(Pat::Uniform.product(Pat::Uniform), Pat::Uniform);
        assert_eq!(Pat::Uniform.opaque(Pat::Uniform), Pat::Uniform);
        assert_eq!(Pat::Affine.opaque(Pat::Uniform), Pat::Arbitrary);
    }

    #[test]
    fn taxonomy_mapping() {
        assert_eq!(AbsClass::UNIFORM.taxonomy(), Taxonomy::Uniform);
        assert_eq!(AbsClass { red: Red::Redundant, pat: Pat::Affine }.taxonomy(), Taxonomy::Affine);
        assert_eq!(
            AbsClass { red: Red::Redundant, pat: Pat::Arbitrary }.taxonomy(),
            Taxonomy::Unstructured
        );
        assert_eq!(AbsClass::VECTOR.taxonomy(), Taxonomy::NonRedundant);
        assert_eq!(
            AbsClass { red: Red::NotRedundant, pat: Pat::Affine }.taxonomy(),
            Taxonomy::NonRedundant,
            "TB-affine is not redundant"
        );
    }

    #[test]
    fn dac_and_uv_eligibility() {
        // TB-affine (1D tid.x): DAC removes, UV does not.
        let tb_affine = AbsClass { red: Red::NotRedundant, pat: Pat::Affine };
        assert!(tb_affine.is_dac_affine());
        assert!(!tb_affine.is_uv_uniform());
        // Unstructured redundant: neither DAC nor UV, only DARSIE.
        let unstructured = AbsClass { red: Red::Redundant, pat: Pat::Arbitrary };
        assert!(!unstructured.is_dac_affine());
        assert!(!unstructured.is_uv_uniform());
        // Uniform: everyone removes it.
        assert!(AbsClass::UNIFORM.is_dac_affine());
        assert!(AbsClass::UNIFORM.is_uv_uniform());
    }

    #[test]
    fn markings_follow_redundancy_dimension() {
        assert_eq!(AbsClass::UNIFORM.marking(), Marking::Redundant);
        assert_eq!(AbsClass::COND_AFFINE.marking(), Marking::ConditionallyRedundant);
        assert_eq!(AbsClass::VECTOR.marking(), Marking::Vector);
    }

    #[test]
    fn meet_is_componentwise_and_commutative() {
        let a = AbsClass { red: Red::Redundant, pat: Pat::Arbitrary };
        let b = AbsClass { red: Red::CondRedundant, pat: Pat::Affine };
        let m = a.meet(b);
        assert_eq!(m, AbsClass { red: Red::CondRedundant, pat: Pat::Arbitrary });
        assert_eq!(a.meet(b), b.meet(a));
    }
}
