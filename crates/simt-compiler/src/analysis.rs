//! The TB-redundancy dataflow analysis (paper Section 4.2).
//!
//! A forward, iterative dataflow over the CFG tracks an [`AbsClass`] for
//! every general register and predicate. Seeds follow the paper:
//! immediates, `ctaid.*`, `ntid.*`, `nctaid.*` and kernel parameters are
//! *definitely redundant*; `tid.x` is *conditionally redundant* (affine);
//! everything else is vector. Classes propagate through the
//! program-dependence structure: an instruction's class is the lattice meet
//! of its source operands (weakest definition wins, as the paper
//! specifies), loads take the redundancy of their address, and predicated
//! instructions additionally meet their guard predicate and the previous
//! value of their destination.
//!
//! The analysis assumes warps of a TB proceed in lockstep; the DARSIE
//! hardware (majority-path tracking, branch synchronization and register
//! versioning) provides that illusion at runtime.

use crate::cfg::Cfg;
use crate::class::{AbsClass, Pat, Red};
use simt_isa::{Instruction, Kernel, MemSpace, Op, Operand, SpecialReg};

/// Options controlling the analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisOptions {
    /// Also treat `tid.y` as conditionally redundant (the paper's 3D-TB
    /// extension, Section 2). Such values need *both* launch-time checks to
    /// pass before promotion.
    pub analyze_tid_y: bool,
    /// Seed entry registers and predicates as uniform instead of vector.
    /// Sound for this machine: warps zero-initialize both files, so a
    /// read-before-write observes the same value in every lane of every
    /// warp of the TB.
    pub entry_uniform: bool,
    /// Refine register classes on branch edges: on the edge where
    /// `setp.eq r, <uniform>` is known to hold, `r` equals a TB-uniform
    /// value in every lane that took the edge. The marking this justifies
    /// is checked by the oracle only at warp-aligned occurrences — exactly
    /// the states where the whole TB took that edge — so the upgrade to
    /// uniform is sound for the skip semantics.
    pub branch_edge_refine: bool,
}

/// Dataflow state: one class per general register and per predicate, plus
/// (for branch-edge refinement) the comparison that defined each predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    regs: Vec<AbsClass>,
    preds: Vec<AbsClass>,
    /// For each predicate still holding the result of an unguarded
    /// `setp cmp r, <uniform>` with `r` unredefined since: `(cmp, r)`.
    pred_src: Vec<Option<(simt_isa::CmpOp, simt_isa::Reg)>>,
}

impl State {
    fn bottom(num_regs: usize, num_preds: usize) -> State {
        State {
            regs: vec![AbsClass::VECTOR; num_regs],
            preds: vec![AbsClass::VECTOR; num_preds],
            pred_src: vec![None; num_preds],
        }
    }

    fn top(num_regs: usize, num_preds: usize) -> State {
        State {
            regs: vec![AbsClass::TOP; num_regs],
            preds: vec![AbsClass::TOP; num_preds],
            pred_src: vec![None; num_preds],
        }
    }

    fn uniform_entry(num_regs: usize, num_preds: usize) -> State {
        State {
            regs: vec![AbsClass::UNIFORM; num_regs],
            preds: vec![AbsClass::UNIFORM; num_preds],
            pred_src: vec![None; num_preds],
        }
    }

    fn meet_with(&mut self, other: &State) -> bool {
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            let m = a.meet(*b);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        for (a, b) in self.preds.iter_mut().zip(&other.preds) {
            let m = a.meet(*b);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        for (a, b) in self.pred_src.iter_mut().zip(&other.pred_src) {
            if *a != *b && a.is_some() {
                *a = None;
                changed = true;
            }
        }
        changed
    }

    fn reg(&self, r: simt_isa::Reg) -> AbsClass {
        self.regs[r.index()]
    }

    fn pred(&self, p: simt_isa::Pred) -> AbsClass {
        self.preds[p.index()]
    }

    fn operand(&self, o: Operand) -> AbsClass {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(_) => AbsClass::UNIFORM,
        }
    }
}

/// Result of the analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-instruction class: the meet of all source operands and the
    /// guard. This drives both the static marking and the per-class
    /// attribution in the paper's figures.
    pub instr_class: Vec<AbsClass>,
}

/// Seed class for a special register read.
fn special_class(s: SpecialReg, opts: AnalysisOptions) -> AbsClass {
    if s.is_tb_uniform() {
        return AbsClass::UNIFORM;
    }
    match s {
        SpecialReg::TidX => AbsClass::COND_AFFINE,
        SpecialReg::TidY if opts.analyze_tid_y => {
            AbsClass { red: Red::CondRedundantXY, pat: Pat::Arbitrary }
        }
        // Lane id is identical (0..warp_size) in every warp: always
        // redundant and affine.
        SpecialReg::LaneId => AbsClass { red: Red::Redundant, pat: Pat::Affine },
        // Warp id is uniform within a warp but differs across warps.
        SpecialReg::WarpId => AbsClass { red: Red::NotRedundant, pat: Pat::Uniform },
        _ => AbsClass::VECTOR,
    }
}

/// Class of the value computed by `instr` (before merging with the guard or
/// the old destination), given operand classes.
fn value_class(instr: &Instruction, st: &State, opts: AnalysisOptions) -> AbsClass {
    let src = |i: usize| st.operand(instr.srcs[i]);
    let red_of_all =
        || instr.srcs.iter().map(|&o| st.operand(o).red).fold(Red::Redundant, Red::meet);
    match instr.op {
        Op::S2R(s) => special_class(s, opts),
        Op::Mov => src(0),
        // Linear combinations preserve affinity.
        Op::IAdd | Op::ISub | Op::FAdd | Op::FSub => {
            AbsClass { red: red_of_all(), pat: src(0).pat.linear(src(1).pat) }
        }
        // Products: affine x uniform stays affine.
        Op::IMul | Op::FMul => AbsClass { red: red_of_all(), pat: src(0).pat.product(src(1).pat) },
        Op::IMad | Op::FFma => {
            AbsClass { red: red_of_all(), pat: src(0).pat.product(src(1).pat).linear(src(2).pat) }
        }
        // A left shift by a uniform amount scales the stride.
        Op::Shl => AbsClass {
            red: red_of_all(),
            pat: if src(1).pat == Pat::Uniform { src(0).pat } else { Pat::Arbitrary },
        },
        // Conversions preserve the pattern (DAC's affine-stream treatment).
        Op::I2F | Op::F2I => AbsClass { red: src(0).red, pat: src(0).pat },
        // One-source opaque ops.
        Op::Not | Op::FRcp | Op::FSqrt | Op::FExp2 | Op::FLog2 => AbsClass {
            red: src(0).red,
            pat: if src(0).pat == Pat::Uniform { Pat::Uniform } else { Pat::Arbitrary },
        },
        // Two-source opaque ops.
        Op::IMulHi
        | Op::Shr
        | Op::Sra
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::IMin
        | Op::IMax
        | Op::FMin
        | Op::FMax
        | Op::FDiv => AbsClass { red: red_of_all(), pat: src(0).pat.opaque(src(1).pat) },
        Op::Setp(_) | Op::SetpF(_) => {
            AbsClass { red: red_of_all(), pat: src(0).pat.opaque(src(1).pat) }
        }
        Op::Sel(p) => {
            let pc = st.pred(p);
            let red = red_of_all().meet(pc.red);
            let pat =
                if pc.pat == Pat::Uniform { src(0).pat.meet(src(1).pat) } else { Pat::Arbitrary };
            AbsClass { red, pat }
        }
        Op::Ld(space) => {
            let addr = src(0);
            match space {
                // Parameter space is immutable and uniform per launch.
                MemSpace::Param => AbsClass::UNIFORM,
                MemSpace::Global | MemSpace::Shared => AbsClass {
                    red: addr.red,
                    // A uniform address loads the same word into every
                    // lane; distinct addresses load arbitrary data.
                    pat: if addr.pat == Pat::Uniform { Pat::Uniform } else { Pat::Arbitrary },
                },
            }
        }
        // Atomics return a unique old value per executing thread.
        Op::Atom(_) => AbsClass::VECTOR,
        // No produced value; class used for attribution only.
        Op::St(_) => AbsClass { red: red_of_all(), pat: Pat::Arbitrary },
        Op::Bra { .. } | Op::Bar | Op::Exit => AbsClass::UNIFORM,
    }
}

/// Applies `instr` to the state, returning the instruction's class (meet of
/// sources and guard).
fn transfer(instr: &Instruction, st: &mut State, opts: AnalysisOptions) -> AbsClass {
    let guard_class = instr.guard.map(|g| st.pred(g.pred));
    let mut vclass = value_class(instr, st, opts);
    // The class attributed to the *instruction*: its sources plus guard.
    let mut iclass = instr.srcs.iter().map(|&o| st.operand(o)).fold(vclass, AbsClass::meet);
    if let Op::Sel(p) = instr.op {
        iclass = iclass.meet(st.pred(p));
    }
    if let Some(g) = guard_class {
        iclass = iclass.meet(g);
        vclass = vclass.meet(g);
        // Guard-false lanes keep the old destination, so both the produced
        // value and the skip decision must fold in the previous contents.
        if let Some(d) = instr.dst {
            iclass = iclass.meet(st.reg(d));
        }
        if let Some(p) = instr.pdst {
            iclass = iclass.meet(st.pred(p));
        }
    }
    if let Some(d) = instr.dst {
        // A guarded write merges with the previous contents in lanes where
        // the guard is false.
        let newc = if guard_class.is_some() { vclass.meet(st.reg(d)) } else { vclass };
        st.regs[d.index()] = newc;
        // The compared register changed: its predicates no longer
        // describe it.
        for ps in &mut st.pred_src {
            if ps.is_some_and(|(_, r)| r == d) {
                *ps = None;
            }
        }
    }
    if let Some(p) = instr.pdst {
        let newc = if guard_class.is_some() { vclass.meet(st.pred(p)) } else { vclass };
        st.preds[p.index()] = newc;
        st.pred_src[p.index()] = match (instr.op, instr.srcs[0], instr.guard) {
            (Op::Setp(cmp), Operand::Reg(r), None)
                if st.operand(instr.srcs[1]) == AbsClass::UNIFORM =>
            {
                Some((cmp, r))
            }
            _ => None,
        };
    }
    iclass
}

/// On a branch edge where predicate `p` is known to be `polarity`, an
/// equality comparison against a uniform value pins the compared register
/// to that uniform value for every lane taking the edge.
fn refine_edge(st: &mut State, p: simt_isa::Pred, polarity: bool) {
    let Some((cmp, r)) = st.pred_src[p.index()] else { return };
    let equality_holds =
        matches!((cmp, polarity), (simt_isa::CmpOp::Eq, true) | (simt_isa::CmpOp::Ne, false));
    if equality_holds {
        st.regs[r.index()] = AbsClass::UNIFORM;
    }
}

/// Runs the analysis to a fixed point and returns per-instruction classes.
#[must_use]
pub fn analyze(kernel: &Kernel, cfg: &Cfg, opts: AnalysisOptions) -> Analysis {
    let nr = usize::from(kernel.num_regs);
    let np = usize::from(simt_isa::reg::NUM_PREDS);
    let nb = cfg.len();

    let mut ins: Vec<State> = vec![State::top(nr, np); nb];
    ins[0] = if opts.entry_uniform { State::uniform_entry(nr, np) } else { State::bottom(nr, np) };

    let rpo = cfg.reverse_post_order();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let mut st = ins[b].clone();
            for pc in cfg.blocks[b].range() {
                let _ = transfer(&kernel.instrs[pc], &mut st, opts);
            }
            let block = &cfg.blocks[b];
            let branch_guard = block.range().last().and_then(|pc| match kernel.instrs[pc].op {
                Op::Bra { .. } => kernel.instrs[pc].guard,
                _ => None,
            });
            let two_way = block.succs.len() == 2 && block.succs[0] != block.succs[1];
            for (i, &s) in block.succs.iter().enumerate() {
                let mut out = st.clone();
                if let (true, Some(g)) = (opts.branch_edge_refine && two_way, branch_guard) {
                    // succs[0] is the taken edge: the guard accepted.
                    let polarity = if i == 0 { !g.negate } else { g.negate };
                    refine_edge(&mut out, g.pred, polarity);
                }
                if ins[s].meet_with(&out) {
                    changed = true;
                }
            }
        }
    }

    // Final pass: record per-instruction classes from the stable block-in
    // states.
    let mut instr_class = vec![AbsClass::VECTOR; kernel.instrs.len()];
    for (b, block_in) in ins.iter().enumerate().take(nb) {
        let mut st = block_in.clone();
        for pc in cfg.blocks[b].range() {
            instr_class[pc] = transfer(&kernel.instrs[pc], &mut st, opts);
        }
    }
    Analysis { instr_class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Taxonomy;
    use simt_isa::{CmpOp, Guard, KernelBuilder, Marking, MemSpace, SpecialReg};

    fn classes(k: &Kernel) -> Vec<AbsClass> {
        let cfg = Cfg::build(k);
        analyze(k, &cfg, AnalysisOptions::default()).instr_class
    }

    /// The paper's Figure 3 kernel: load `in[tid.x]` from an array.
    fn fig3_kernel() -> Kernel {
        let mut b = KernelBuilder::new("fig3");
        let t = b.special(SpecialReg::TidX); // 0: s2r  (cond affine)
        let r1 = b.imul(t, 4u32); // 1: mul  (cond affine)
        let r2 = b.iadd(r1, 10u32); // 2: add  (cond affine)
        let v = b.load(MemSpace::Global, r2, 0); // 3: ld  (cond unstructured)
        b.store(MemSpace::Global, 0u32, v, 0); // 4: st
        b.finish()
    }

    #[test]
    fn fig3_address_chain_is_conditionally_redundant_affine() {
        let k = fig3_kernel();
        let c = classes(&k);
        assert_eq!(c[0].red, Red::CondRedundant, "tid.x");
        assert_eq!(c[0].pat, Pat::Affine);
        assert_eq!(c[1].red, Red::CondRedundant, "tid.x * 4");
        assert_eq!(c[1].pat, Pat::Affine);
        assert_eq!(c[2].red, Red::CondRedundant, "addr + 10");
        assert_eq!(c[2].pat, Pat::Affine);
    }

    #[test]
    fn fig3_load_from_conditional_address_is_conditional_unstructured() {
        let k = fig3_kernel();
        let c = classes(&k);
        // Promoted (2D launch): becomes unstructured redundant — exactly
        // the paper's R3.
        assert_eq!(c[3].finalize(true, false).taxonomy(), Taxonomy::Unstructured);
        // Not promoted (1D launch): plain vector.
        assert_eq!(c[3].finalize(false, false).taxonomy(), Taxonomy::NonRedundant);
    }

    #[test]
    fn uniform_seeds_stay_uniform() {
        let mut b = KernelBuilder::new("u");
        let c0 = b.special(SpecialReg::CtaidX);
        let n = b.special(SpecialReg::NtidX);
        let x = b.imad(c0, n, 7u32);
        let p = b.param(0);
        let y = b.iadd(x, p);
        b.store(MemSpace::Global, y, y, 0);
        let k = b.finish();
        let c = classes(&k);
        for (pc, cls) in c.iter().enumerate().take(5) {
            assert_eq!(cls.marking(), Marking::Redundant, "pc {pc}: {cls:?}");
            assert_eq!(cls.taxonomy(), Taxonomy::Uniform);
        }
    }

    #[test]
    fn vector_seed_poisons_dependents() {
        let mut b = KernelBuilder::new("v");
        let ty = b.special(SpecialReg::TidY); // vector (no tid.y analysis)
        let x = b.iadd(ty, 1u32);
        let tx = b.special(SpecialReg::TidX);
        let y = b.iadd(x, tx); // vector meets cond => vector
        b.store(MemSpace::Global, y, y, 0);
        let k = b.finish();
        let c = classes(&k);
        assert_eq!(c[0].marking(), Marking::Vector);
        assert_eq!(c[1].marking(), Marking::Vector);
        assert_eq!(c[2].marking(), Marking::ConditionallyRedundant);
        assert_eq!(c[3].marking(), Marking::Vector, "weakest definition wins");
    }

    #[test]
    fn tid_y_extension_seeds_conditionally() {
        let mut b = KernelBuilder::new("ty");
        let ty = b.special(SpecialReg::TidY);
        b.store(MemSpace::Global, 0u32, ty, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let off = analyze(&k, &cfg, AnalysisOptions::default()).instr_class;
        assert_eq!(off[0].red, Red::NotRedundant);
        let on = analyze(
            &k,
            &cfg,
            AnalysisOptions { analyze_tid_y: true, ..AnalysisOptions::default() },
        )
        .instr_class;
        assert_eq!(on[0].red, Red::CondRedundantXY);
        // XY-conditional values need both checks.
        assert_eq!(on[0].finalize(true, false).red, Red::NotRedundant);
        assert_eq!(on[0].finalize(true, true).red, Red::Redundant);
    }

    #[test]
    fn lane_id_is_always_redundant_affine() {
        let mut b = KernelBuilder::new("l");
        let l = b.special(SpecialReg::LaneId);
        b.store(MemSpace::Global, 0u32, l, 0);
        let k = b.finish();
        let c = classes(&k);
        assert_eq!(c[0].red, Red::Redundant);
        assert_eq!(c[0].pat, Pat::Affine);
    }

    #[test]
    fn affine_times_affine_degrades_to_unstructured() {
        let mut b = KernelBuilder::new("aa");
        let t = b.special(SpecialReg::TidX);
        let sq = b.imul(t, t);
        b.store(MemSpace::Global, sq, sq, 0);
        let k = b.finish();
        let c = classes(&k);
        assert_eq!(c[1].red, Red::CondRedundant, "still redundant across warps");
        assert_eq!(c[1].pat, Pat::Arbitrary, "but no longer affine");
    }

    #[test]
    fn guarded_write_merges_with_old_value() {
        let mut b = KernelBuilder::new("g");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32); // cond-redundant predicate
        let ty = b.special(SpecialReg::TidY); // vector
        let pv = b.setp(CmpOp::Lt, ty, 4u32); // vector predicate
        let dst = b.mov(7u32); // uniform
                               // Vector-guarded write of a uniform value: dst becomes vector.
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Mov,
                Some(dst),
                None,
                vec![simt_isa::Operand::Imm(3)],
            )
            .with_guard(Guard::if_true(pv)),
        );
        let out = b.iadd(dst, 0u32);
        b.store(MemSpace::Global, 0u32, out, 0);
        let _ = p;
        let k = b.finish();
        let c = classes(&k);
        let add_pc = 6;
        assert_eq!(c[add_pc].marking(), Marking::Vector, "guard poisons destination");
    }

    #[test]
    fn cond_guard_keeps_conditional() {
        let mut b = KernelBuilder::new("g2");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        let dst = b.mov(7u32);
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Mov,
                Some(dst),
                None,
                vec![simt_isa::Operand::Imm(3)],
            )
            .with_guard(Guard::if_true(p)),
        );
        let out = b.iadd(dst, 0u32);
        b.store(MemSpace::Global, 0u32, out, 0);
        let k = b.finish();
        let c = classes(&k);
        assert_eq!(c[4].marking(), Marking::ConditionallyRedundant);
    }

    #[test]
    fn join_meets_both_paths() {
        let mut b = KernelBuilder::new("j");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        let out = b.alloc();
        b.if_then_else(
            Guard::if_true(p),
            |b| b.mov_to(out, 1u32),
            |b| {
                let ty = b.special(SpecialReg::TidY);
                b.mov_to(out, ty);
            },
        );
        let use_pc_val = b.iadd(out, 0u32);
        b.store(MemSpace::Global, 0u32, use_pc_val, 0);
        let k = b.finish();
        let c = classes(&k);
        let add_pc = k.len() - 3;
        assert!(matches!(k.instrs[add_pc].op, Op::IAdd));
        assert_eq!(c[add_pc].marking(), Marking::Vector, "vector path poisons the join");
    }

    #[test]
    fn loop_fixed_point_converges_and_poisons_accumulator() {
        let mut b = KernelBuilder::new("lp");
        let t = b.special(SpecialReg::TidY); // vector
        let acc = b.mov(0u32); // starts uniform
        b.do_while(|b| {
            b.iadd_to(acc, acc, t); // acc += vector
            let p = b.setp(CmpOp::Lt, acc, 100u32);
            Guard::if_true(p)
        });
        b.store(MemSpace::Global, 0u32, acc, 0);
        let k = b.finish();
        let c = classes(&k);
        let store_pc = k.instrs.iter().position(|i| i.op.is_store()).unwrap();
        assert_eq!(c[store_pc].marking(), Marking::Vector);
    }

    #[test]
    fn loop_preserves_redundant_accumulator() {
        // An accumulator fed only by redundant values stays redundant
        // around the back edge (like the MM inner loop's address updates).
        let mut b = KernelBuilder::new("lp2");
        let t = b.special(SpecialReg::TidX);
        let acc = b.shl_imm(t, 2); // cond affine
        let i = b.mov(0u32);
        let p = b.alloc_pred();
        b.do_while(|b| {
            b.iadd_to(acc, acc, 0x80u32); // stays cond affine
            b.iadd_to(i, i, 1u32);
            b.setp_to(p, CmpOp::Lt, i, 8u32);
            Guard::if_true(p)
        });
        b.store(MemSpace::Global, acc, acc, 0);
        let k = b.finish();
        let c = classes(&k);
        let upd_pc = 3;
        assert!(matches!(k.instrs[upd_pc].op, Op::IAdd));
        assert_eq!(c[upd_pc].marking(), Marking::ConditionallyRedundant);
        assert_eq!(c[upd_pc].pat, Pat::Affine);
    }

    #[test]
    fn shared_load_from_redundant_address() {
        let mut b = KernelBuilder::new("sm");
        let t = b.special(SpecialReg::TidX);
        let a = b.shl_imm(t, 2);
        let v = b.load(MemSpace::Shared, a, 0);
        b.store(MemSpace::Global, a, v, 0);
        let k = b.finish();
        let c = classes(&k);
        assert_eq!(c[2].red, Red::CondRedundant);
        assert_eq!(c[2].finalize(true, false).taxonomy(), Taxonomy::Unstructured);
    }

    #[test]
    fn atom_is_vector() {
        let mut b = KernelBuilder::new("at");
        let old = b.atom(simt_isa::AtomOp::Add, 0u32, 1u32);
        b.store(MemSpace::Global, 4u32, old, 0);
        let k = b.finish();
        let c = classes(&k);
        assert_eq!(c[1].marking(), Marking::Vector);
    }
}
