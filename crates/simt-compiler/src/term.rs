//! Hash-consed symbolic bitvector terms for translation validation.
//!
//! The symbolic executor in `simt-verify` runs a kernel over *symbolic*
//! thread coordinates and symbolic initial memory; every register then
//! holds a [`TermId`] into a [`TermArena`]. Two things make the domain
//! dimension-parametric rather than tied to one replayed launch:
//!
//! 1. **Canonicalization through the affine domain.** Every interned term
//!    carries its [`AffineVal`] abstraction (computed with the exact same
//!    transfer rules as [`crate::affine`]); a term whose affine form is
//!    TB-uniform has *no* thread dependencies, whatever its syntax. This
//!    is what lets `tid.x * 4 - tid.x * 4 + n` prove uniform without any
//!    rewriting.
//! 2. **Dependency tracking.** Every term carries the set of thread-
//!    coordinate sources ([`Deps`]) its value can range over: `tid.x`,
//!    `tid.y`, `laneid`, `warpid`, or an opaque escape. The paper's
//!    promotion predicate (2D TB, `ntid.x` a power of two no larger than
//!    the warp size) makes `tid.x = laneid mod ntid.x` a pure *lane*
//!    function, so a conditionally redundant value may depend on `tid.x`
//!    and the lane but on nothing else; a definitely redundant value may
//!    depend on the lane only; a skippable branch predicate on nothing.
//!
//! Terms are hash-consed: structurally equal terms share one id, so
//! equality is O(1) and the executor's path merging cannot blow up on
//! shared subexpressions. Constant folding mirrors the functional
//! executor's ALU bit-for-bit ([`fold_alu`] — parity-tested against
//! `gpu-sim` from that crate's test suite).

use crate::affine::AffineVal;
use simt_isa::{CmpOp, MemSpace, Op, SpecialReg};
use std::collections::HashMap;

/// Set of thread-coordinate sources a term's value can depend on.
///
/// The empty set means "TB-uniform for every launch of the 2D family":
/// the value is a function of launch constants (`ntid.*`, `ctaid.*`,
/// parameters, uniform loads) only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Deps(u8);

impl Deps {
    /// No thread dependence (TB-uniform).
    pub const NONE: Deps = Deps(0);
    /// Depends on `tid.x`.
    pub const TIDX: Deps = Deps(1);
    /// Depends on `tid.y`.
    pub const TIDY: Deps = Deps(1 << 1);
    /// Depends on the lane id within the warp.
    pub const LANE: Deps = Deps(1 << 2);
    /// Depends on the warp id within the threadblock.
    pub const WARP: Deps = Deps(1 << 3);
    /// Escapes the tracked sources (atomic results, overwritten memory).
    pub const OTHER: Deps = Deps(1 << 4);

    /// Set union.
    #[must_use]
    pub fn union(self, other: Deps) -> Deps {
        Deps(self.0 | other.0)
    }

    /// True when every source in `self` is also in `allowed`.
    #[must_use]
    pub fn subset_of(self, allowed: Deps) -> bool {
        self.0 & !allowed.0 == 0
    }

    /// True when the term depends on no thread coordinate at all.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Deps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("{}");
        }
        let names = [
            (Deps::TIDX, "tid.x"),
            (Deps::TIDY, "tid.y"),
            (Deps::LANE, "laneid"),
            (Deps::WARP, "warpid"),
            (Deps::OTHER, "opaque"),
        ];
        let parts: Vec<&str> =
            names.iter().filter(|(d, _)| !self.0 & d.0 == 0).map(|(_, n)| *n).collect();
        write!(f, "{{{}}}", parts.join(","))
    }
}

/// Index of a term in its [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// Arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the term DAG. Predicates are terms too, valued 0 / 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermNode {
    /// A concrete 32-bit constant.
    Const(u32),
    /// A symbolic special register (`tid.x`, `ntid.y`, `laneid`, ...).
    Special(SpecialReg),
    /// A fresh opaque value (atomic results); `id` keeps instances apart.
    Havoc(u32),
    /// A loop-summary symbol: the value of a register modified by a
    /// summarized natural loop, after an arbitrary number of iterations.
    /// Unlike [`Havoc`](TermNode::Havoc), it carries the dependency set
    /// the loop's dataflow closed over, so uniformity proofs survive
    /// summarization. `id` keeps generations apart.
    Summary(u32),
    /// An ALU operation over up to three operands (absent operands are
    /// the constant 0, matching the functional executor).
    Alu {
        /// The opcode (an ALU op per `OpKind`).
        op: Op,
        /// First source.
        a: TermId,
        /// Second source (constant 0 when the op takes fewer).
        b: TermId,
        /// Third source (constant 0 when the op takes fewer).
        c: TermId,
    },
    /// A comparison producing 0 / 1.
    Cmp {
        /// Comparison operator.
        cmp: CmpOp,
        /// True for the float comparison (`setp.f32`).
        float: bool,
        /// Left operand.
        a: TermId,
        /// Right operand.
        b: TermId,
    },
    /// `c != 0 ? t : e` — the path-merge and guarded-write combinator.
    Ite {
        /// Condition (0 / 1 valued).
        c: TermId,
        /// Value when the condition holds.
        t: TermId,
        /// Value when it does not.
        e: TermId,
    },
    /// A load `space[base + offset]` observing memory generation `gen`.
    /// Generation 0 is the *initial* symbolic memory: a pure function of
    /// the address. Later generations have seen at least one symbolic
    /// store to the space.
    Load {
        /// The memory space.
        space: MemSpace,
        /// Base-address term.
        base: TermId,
        /// Static byte offset.
        offset: i32,
        /// Memory generation observed.
        gen: u32,
    },
}

/// Constant-folds one ALU operation exactly like the functional
/// executor's per-lane ALU (`gpu-sim`'s `exec::alu`, against which this
/// is parity-tested). Returns `None` for non-ALU opcodes.
#[must_use]
pub fn fold_alu(op: Op, a: u32, b: u32, c: u32) -> Option<u32> {
    let (ai, bi) = (a as i32, b as i32);
    let (af, bf, cf) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
    Some(match op {
        Op::IAdd => a.wrapping_add(b),
        Op::ISub => a.wrapping_sub(b),
        Op::IMul => a.wrapping_mul(b),
        Op::IMulHi => ((i64::from(ai) * i64::from(bi)) >> 32) as u32,
        Op::IMad => a.wrapping_mul(b).wrapping_add(c),
        Op::IMin => ai.min(bi) as u32,
        Op::IMax => ai.max(bi) as u32,
        Op::Shl => a.wrapping_shl(b & 31),
        Op::Shr => a.wrapping_shr(b & 31),
        Op::Sra => (ai >> (b & 31)) as u32,
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Not => !a,
        Op::FAdd => (af + bf).to_bits(),
        Op::FSub => (af - bf).to_bits(),
        Op::FMul => (af * bf).to_bits(),
        Op::FFma => af.mul_add(bf, cf).to_bits(),
        Op::FMin => af.min(bf).to_bits(),
        Op::FMax => af.max(bf).to_bits(),
        Op::FDiv => (af / bf).to_bits(),
        Op::FRcp => (1.0 / af).to_bits(),
        Op::FSqrt => af.sqrt().to_bits(),
        Op::FExp2 => af.exp2().to_bits(),
        Op::FLog2 => af.log2().to_bits(),
        Op::Mov => a,
        Op::I2F => (ai as f32).to_bits(),
        Op::F2I => {
            let t = af.trunc();
            if t.is_nan() {
                0
            } else {
                (t.clamp(i32::MIN as f32, i32::MAX as f32) as i32) as u32
            }
        }
        _ => return None,
    })
}

/// Concrete evaluation context: one thread of one candidate launch of
/// the 2D family (grid fixed to a single threadblock).
pub struct EvalCtx<'a> {
    /// Block shape `(ntid.x, ntid.y)`; `ntid.z = 1`.
    pub block: (u32, u32),
    /// SIMT width.
    pub warp_size: u32,
    /// Warp index within the threadblock.
    pub warp: u32,
    /// Lane index within the warp.
    pub lane: u32,
    /// Kernel parameter words.
    pub params: &'a [u32],
    /// Reads a word of the *initial* global memory image.
    pub read_global: &'a dyn Fn(u64) -> u32,
}

/// The hash-consed term arena. Interning computes, once per node, the
/// affine abstraction and the dependency set.
#[derive(Default)]
pub struct TermArena {
    nodes: Vec<TermNode>,
    affine: Vec<AffineVal>,
    deps: Vec<Deps>,
    memo: HashMap<TermNode, TermId>,
    next_havoc: u32,
    next_summary: u32,
}

impl TermArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of interned terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no term has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `id`.
    #[must_use]
    pub fn node(&self, id: TermId) -> TermNode {
        self.nodes[id.index()]
    }

    /// The affine abstraction of `id`.
    #[must_use]
    pub fn affine(&self, id: TermId) -> AffineVal {
        self.affine[id.index()]
    }

    /// The dependency set of `id`. A term whose affine form is TB-uniform
    /// has the empty set whatever its syntax.
    #[must_use]
    pub fn deps(&self, id: TermId) -> Deps {
        self.deps[id.index()]
    }

    fn intern(&mut self, node: TermNode, affine: AffineVal, deps: Deps) -> TermId {
        if let Some(&id) = self.memo.get(&node) {
            return id;
        }
        // Canonicalize through the affine domain: a provably TB-uniform
        // value depends on no thread coordinate.
        let deps = if affine.is_uniform() { Deps::NONE } else { deps };
        let id = TermId(u32::try_from(self.nodes.len()).expect("term arena overflow"));
        self.nodes.push(node);
        self.affine.push(affine);
        self.deps.push(deps);
        self.memo.insert(node, id);
        id
    }

    /// Interns a constant.
    pub fn constant(&mut self, v: u32) -> TermId {
        // Immediates sign-extend in the affine domain, matching
        // `affine::resolve`.
        self.intern(TermNode::Const(v), AffineVal::constant(i64::from(v as i32)), Deps::NONE)
    }

    /// Reads `id` back as a constant, if it is one.
    #[must_use]
    pub fn as_const(&self, id: TermId) -> Option<u32> {
        match self.node(id) {
            TermNode::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Interns a symbolic special register. The 2D launch family pins
    /// `tid.z` to 0 and `ntid.z` to 1; a single-threadblock candidate
    /// grid pins `ctaid.*` to 0 and `nctaid.*` to 1.
    pub fn special(&mut self, s: SpecialReg) -> TermId {
        match s {
            SpecialReg::TidZ => return self.constant(0),
            SpecialReg::NtidZ => return self.constant(1),
            _ => {}
        }
        let deps = match s {
            SpecialReg::TidX => Deps::TIDX,
            SpecialReg::TidY => Deps::TIDY,
            SpecialReg::LaneId => Deps::LANE,
            SpecialReg::WarpId => Deps::WARP,
            _ => Deps::NONE,
        };
        self.intern(TermNode::Special(s), AffineVal::of_special(s, 1), deps)
    }

    /// Interns a fresh opaque value.
    pub fn havoc(&mut self) -> TermId {
        let id = self.next_havoc;
        self.next_havoc += 1;
        self.intern(TermNode::Havoc(id), AffineVal::Unknown, Deps::OTHER)
    }

    /// Interns a fresh loop-summary symbol carrying `deps`. A summary
    /// with no thread dependencies abstracts a TB-uniform (but otherwise
    /// unknown) value; any other dependency set escapes the affine
    /// domain but keeps the dependency lattice precise.
    pub fn summary(&mut self, deps: Deps) -> TermId {
        let id = self.next_summary;
        self.next_summary += 1;
        let affine =
            if deps.is_empty() { AffineVal::uniform_unknown() } else { AffineVal::Unknown };
        self.intern(TermNode::Summary(id), affine, deps)
    }

    fn union3(&self, a: TermId, b: TermId, c: TermId) -> Deps {
        self.deps(a).union(self.deps(b)).union(self.deps(c))
    }

    /// Interns an ALU operation; absent second / third operands read as
    /// the constant 0, matching the functional executor.
    pub fn alu(&mut self, op: Op, a: TermId, b: Option<TermId>, c: Option<TermId>) -> TermId {
        let zero = self.constant(0);
        let b = b.unwrap_or(zero);
        let c = c.unwrap_or(zero);
        if let (Some(ka), Some(kb), Some(kc)) =
            (self.as_const(a), self.as_const(b), self.as_const(c))
        {
            if let Some(v) = fold_alu(op, ka, kb, kc) {
                return self.constant(v);
            }
        }
        // Bit-exact algebraic identities keep loop-unrolled address
        // chains small and let uniform branch guards fold.
        let (ka, kb) = (self.as_const(a), self.as_const(b));
        match op {
            Op::Mov => return a,
            Op::IAdd if kb == Some(0) => return a,
            Op::IAdd if ka == Some(0) => return b,
            Op::ISub if kb == Some(0) => return a,
            Op::ISub if a == b => return self.constant(0),
            Op::IMul if kb == Some(1) => return a,
            Op::IMul if ka == Some(1) => return b,
            Op::IMul if ka == Some(0) || kb == Some(0) => return self.constant(0),
            Op::IMad if ka == Some(0) || kb == Some(0) => return c,
            Op::Shl | Op::Shr | Op::Sra if kb.is_some_and(|k| k & 31 == 0) => return a,
            Op::And if a == b => return a,
            Op::And if ka == Some(0) || kb == Some(0) => return self.constant(0),
            Op::And if kb == Some(u32::MAX) => return a,
            Op::Or if a == b || kb == Some(0) => return a,
            Op::Or if ka == Some(0) => return b,
            Op::Xor if a == b => return self.constant(0),
            Op::Xor if kb == Some(0) => return a,
            Op::Xor if ka == Some(0) => return b,
            _ => {}
        }
        // Re-associate xor-by-constant chains so double negation folds.
        if op == Op::Xor {
            if let (TermNode::Alu { op: Op::Xor, a: ia, b: ib, .. }, Some(k)) = (self.node(a), kb) {
                if let Some(k2) = self.as_const(ib) {
                    let folded = self.constant(k ^ k2);
                    return self.alu(Op::Xor, ia, Some(folded), None);
                }
            }
        }
        let affine = self.alu_affine(op, a, b, c);
        let deps = self.union3(a, b, c);
        self.intern(TermNode::Alu { op, a, b, c }, affine, deps)
    }

    /// Affine transfer mirroring `affine::value_of`.
    fn alu_affine(&self, op: Op, a: TermId, b: TermId, c: TermId) -> AffineVal {
        let (va, vb, vc) = (self.affine(a), self.affine(b), self.affine(c));
        match op {
            Op::IAdd => va + vb,
            Op::ISub => va - vb,
            Op::IMul => va * vb,
            Op::IMad => va * vb + vc,
            Op::Shl => va << vb,
            Op::IMin => va.min_(vb),
            Op::IMax => va.max_(vb),
            _ => AffineVal::opaque(&[va, vb, vc]),
        }
    }

    /// Interns a comparison (0 / 1 valued).
    pub fn cmp(&mut self, cmp: CmpOp, float: bool, a: TermId, b: TermId) -> TermId {
        if let (Some(ka), Some(kb)) = (self.as_const(a), self.as_const(b)) {
            let v = if float {
                cmp.eval_f32(f32::from_bits(ka), f32::from_bits(kb))
            } else {
                cmp.eval_i32(ka as i32, kb as i32)
            };
            return self.constant(u32::from(v));
        }
        if !float && a == b {
            // Reflexive integer comparisons are decidable syntactically.
            let v = matches!(cmp, CmpOp::Eq | CmpOp::Le | CmpOp::Ge);
            return self.constant(u32::from(v));
        }
        let uniform = self.affine(a).is_uniform() && self.affine(b).is_uniform();
        let affine = if uniform {
            // The truth value is shared across threads only when both
            // operand constants are (divergence bit).
            let shared = self.affine(a).is_tb_uniform() && self.affine(b).is_tb_uniform();
            AffineVal::Aff(crate::affine::Affine { a: 0, b: 0, lo: 0, hi: 1, uniform: shared })
        } else {
            AffineVal::Unknown
        };
        let deps = self.deps(a).union(self.deps(b));
        self.intern(TermNode::Cmp { cmp, float, a, b }, affine, deps)
    }

    /// Boolean negation of a 0 / 1 valued term.
    pub fn not(&mut self, p: TermId) -> TermId {
        let one = self.constant(1);
        self.alu(Op::Xor, p, Some(one), None)
    }

    /// Interns `c != 0 ? t : e`.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        if let Some(k) = self.as_const(c) {
            return if k != 0 { t } else { e };
        }
        if t == e {
            return t;
        }
        let (vt, ve) = (self.affine(t), self.affine(e));
        // Mirrors the `Sel` rule of `affine::value_of`: a TB-uniform
        // condition hulls the arms, a thread-dependent one mixes them.
        let affine = if self.deps(c).is_empty() { vt.meet(ve, false) } else { AffineVal::Unknown };
        let deps = self.union3(c, t, e);
        self.intern(TermNode::Ite { c, t, e }, affine, deps)
    }

    /// Interns a load of `space[base + offset]` at memory generation
    /// `gen`. Generation-0 shared memory is architecturally zeroed;
    /// generation-0 loads elsewhere are pure functions of the address.
    pub fn load(&mut self, space: MemSpace, base: TermId, offset: i32, gen: u32) -> TermId {
        if gen == 0 && space == MemSpace::Shared {
            return self.constant(0);
        }
        let addr_uniform = self.affine(base).is_uniform();
        let (affine, deps) = if gen == 0 {
            // Initial symbolic memory: the value is a function of the
            // address alone, so it inherits the address's dependencies.
            let affine = if space == MemSpace::Param || addr_uniform {
                AffineVal::uniform_unknown()
            } else {
                AffineVal::Unknown
            };
            (affine, self.deps(base))
        } else if space == MemSpace::Param {
            // Parameter space is read-only; stores never reach it.
            (AffineVal::uniform_unknown(), self.deps(base))
        } else if addr_uniform {
            // One word read by every thread: TB-uniform within this
            // dynamic instance (the same standing assumption the affine
            // dataflow makes; the race passes police violations).
            (AffineVal::uniform_unknown(), Deps::NONE)
        } else if space == MemSpace::Shared {
            // Post-store shared memory is still one fixed address->value
            // function per dynamic TB instance (stores are ordered by
            // barriers; the race passes police violations), so the value
            // inherits the address's thread dependencies: equal addresses
            // read equal words whichever thread stored them.
            (AffineVal::Unknown, self.deps(base))
        } else {
            // Post-store global memory may also have been written by other
            // threadblocks in flight; stay conservative.
            (AffineVal::Unknown, self.deps(base).union(Deps::OTHER))
        };
        self.intern(TermNode::Load { space, base, offset, gen }, affine, deps)
    }

    /// Concretely evaluates `id` for one thread of a candidate launch.
    /// `None` when the term escapes evaluation (havoc, post-store loads,
    /// negative or unaligned addresses).
    #[must_use]
    pub fn eval(&self, id: TermId, ctx: &EvalCtx<'_>) -> Option<u32> {
        match self.node(id) {
            TermNode::Const(v) => Some(v),
            TermNode::Special(s) => {
                let lin = u64::from(ctx.warp) * u64::from(ctx.warp_size) + u64::from(ctx.lane);
                let (bx, by) = (u64::from(ctx.block.0), u64::from(ctx.block.1));
                Some(match s {
                    SpecialReg::TidX => (lin % bx) as u32,
                    SpecialReg::TidY => ((lin / bx) % by) as u32,
                    SpecialReg::TidZ => (lin / (bx * by)) as u32,
                    SpecialReg::NtidX => ctx.block.0,
                    SpecialReg::NtidY => ctx.block.1,
                    SpecialReg::NtidZ => 1,
                    SpecialReg::CtaidX | SpecialReg::CtaidY | SpecialReg::CtaidZ => 0,
                    SpecialReg::NctaidX | SpecialReg::NctaidY | SpecialReg::NctaidZ => 1,
                    SpecialReg::LaneId => ctx.lane,
                    SpecialReg::WarpId => ctx.warp,
                })
            }
            TermNode::Havoc(_) | TermNode::Summary(_) => None,
            TermNode::Alu { op, a, b, c } => {
                let (a, b, c) = (self.eval(a, ctx)?, self.eval(b, ctx)?, self.eval(c, ctx)?);
                fold_alu(op, a, b, c)
            }
            TermNode::Cmp { cmp, float, a, b } => {
                let (a, b) = (self.eval(a, ctx)?, self.eval(b, ctx)?);
                let v = if float {
                    cmp.eval_f32(f32::from_bits(a), f32::from_bits(b))
                } else {
                    cmp.eval_i32(a as i32, b as i32)
                };
                Some(u32::from(v))
            }
            TermNode::Ite { c, t, e } => {
                if self.eval(c, ctx)? != 0 {
                    self.eval(t, ctx)
                } else {
                    self.eval(e, ctx)
                }
            }
            TermNode::Load { space, base, offset, gen } => {
                if gen != 0 && space != MemSpace::Param {
                    return None;
                }
                let base = self.eval(base, ctx)?;
                let addr = u64::try_from(i64::from(base) + i64::from(offset)).ok()?;
                match space {
                    MemSpace::Param => {
                        let i = usize::try_from(addr / 4).ok()?;
                        Some(ctx.params.get(i).copied().unwrap_or(0))
                    }
                    MemSpace::Global => {
                        if addr % 4 != 0 {
                            return None;
                        }
                        Some((ctx.read_global)(addr))
                    }
                    MemSpace::Shared => Some(0),
                }
            }
        }
    }

    /// Renders `id` as a compact expression for diagnostics, eliding deep
    /// subterms.
    #[must_use]
    pub fn render(&self, id: TermId) -> String {
        self.render_depth(id, 4)
    }

    fn render_depth(&self, id: TermId, depth: usize) -> String {
        if depth == 0 {
            return "..".into();
        }
        match self.node(id) {
            TermNode::Const(v) => format!("{}", v as i32),
            TermNode::Special(s) => format!("{s}"),
            TermNode::Havoc(i) => format!("havoc{i}"),
            TermNode::Summary(i) => format!("sum{i}"),
            TermNode::Alu { op, a, b, c } => {
                let n = op.num_srcs();
                let mut parts = vec![self.render_depth(a, depth - 1)];
                if n >= 2 {
                    parts.push(self.render_depth(b, depth - 1));
                }
                if n >= 3 {
                    parts.push(self.render_depth(c, depth - 1));
                }
                format!("({} {})", op.mnemonic(), parts.join(" "))
            }
            TermNode::Cmp { cmp, float, a, b } => {
                let suffix = if float { "f32" } else { "s32" };
                format!(
                    "({cmp}.{suffix} {} {})",
                    self.render_depth(a, depth - 1),
                    self.render_depth(b, depth - 1)
                )
            }
            TermNode::Ite { c, t, e } => format!(
                "(ite {} {} {})",
                self.render_depth(c, depth - 1),
                self.render_depth(t, depth - 1),
                self.render_depth(e, depth - 1)
            ),
            TermNode::Load { space, base, offset, gen } => {
                format!("(ld.{space}@{gen} {}{offset:+})", self.render_depth(base, depth - 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> TermArena {
        TermArena::new()
    }

    #[test]
    fn hash_consing_shares_structurally_equal_terms() {
        let mut t = arena();
        let x = t.special(SpecialReg::TidX);
        let four = t.constant(4);
        let a = t.alu(Op::IMul, x, Some(four), None);
        let b = t.alu(Op::IMul, x, Some(four), None);
        assert_eq!(a, b);
        let n = t.len();
        let _ = t.alu(Op::IMul, x, Some(four), None);
        assert_eq!(t.len(), n, "re-interning allocates nothing");
    }

    #[test]
    fn constant_folding_matches_alu_semantics() {
        let mut t = arena();
        let a = t.constant(7);
        let b = t.constant(u32::MAX);
        let sum = t.alu(Op::IAdd, a, Some(b), None);
        assert_eq!(t.as_const(sum), Some(6), "wrapping add folds");
        let hi = t.constant(0x8000_0000);
        let two = t.constant(2);
        let mh = t.alu(Op::IMulHi, hi, Some(two), None);
        assert_eq!(t.as_const(mh), Some(u32::MAX));
    }

    #[test]
    fn algebraic_identities_fold() {
        let mut t = arena();
        let x = t.special(SpecialReg::TidX);
        let zero = t.constant(0);
        assert_eq!(t.alu(Op::IAdd, x, Some(zero), None), x);
        assert_eq!(t.alu(Op::ISub, x, Some(x), None), zero);
        assert_eq!(t.alu(Op::Xor, x, Some(x), None), zero);
        assert_eq!(t.alu(Op::And, x, Some(x), None), x);
        assert_eq!(t.alu(Op::Mov, x, None, None), x);
        let p = t.cmp(CmpOp::Le, false, x, x);
        assert_eq!(t.as_const(p), Some(1), "reflexive le is true");
    }

    #[test]
    fn affine_canonicalization_erases_dependencies() {
        let mut t = arena();
        let x = t.special(SpecialReg::TidX);
        let four = t.constant(4);
        let fx = t.alu(Op::IMul, x, Some(four), None);
        assert_eq!(t.deps(fx), Deps::TIDX);
        // 4*tid.x - 4*tid.x is syntactically tid.x-dependent but
        // affine-uniform; folding also catches it here, so build the
        // harder (4*tid.x + n) - 4*tid.x with an opaque uniform n.
        let n = t.special(SpecialReg::NtidX);
        let sum = t.alu(Op::IAdd, fx, Some(n), None);
        assert_eq!(t.deps(sum), Deps::TIDX);
        let diff = t.alu(Op::ISub, sum, Some(fx), None);
        assert!(t.deps(diff).is_empty(), "affine proves tid.x cancels: {}", t.render(diff));
    }

    #[test]
    fn special_dependencies() {
        let mut t = arena();
        let y = t.special(SpecialReg::TidY);
        let lane = t.special(SpecialReg::LaneId);
        let warp = t.special(SpecialReg::WarpId);
        let cta = t.special(SpecialReg::CtaidX);
        assert_eq!(t.deps(y), Deps::TIDY);
        assert_eq!(t.deps(lane), Deps::LANE);
        assert_eq!(t.deps(warp), Deps::WARP);
        assert!(t.deps(cta).is_empty());
        let z = t.special(SpecialReg::TidZ);
        assert_eq!(t.as_const(z), Some(0), "2D family pins tid.z");
    }

    #[test]
    fn initial_memory_loads_inherit_address_deps() {
        let mut t = arena();
        let x = t.special(SpecialReg::TidX);
        let two = t.constant(2);
        let addr = t.alu(Op::Shl, x, Some(two), None);
        let ld = t.load(MemSpace::Global, addr, 0, 0);
        assert_eq!(t.deps(ld), Deps::TIDX, "in[tid.x] is a tid.x function");
        let uaddr = t.constant(64);
        let uld = t.load(MemSpace::Global, uaddr, 0, 0);
        assert!(t.deps(uld).is_empty());
        // After a store the value may be anyone's data.
        let post = t.load(MemSpace::Global, addr, 0, 1);
        assert!(!t.deps(post).subset_of(Deps::TIDX.union(Deps::LANE)));
        assert_eq!(t.eval(post, &ctx(8, 8, 0, 0, &[], &|_| 0)), None);
        // Generation-0 shared memory is zeroed.
        let sld = t.load(MemSpace::Shared, addr, 0, 0);
        assert_eq!(t.as_const(sld), Some(0));
    }

    fn ctx<'a>(
        bx: u32,
        by: u32,
        warp: u32,
        lane: u32,
        params: &'a [u32],
        read: &'a dyn Fn(u64) -> u32,
    ) -> EvalCtx<'a> {
        EvalCtx { block: (bx, by), warp_size: 32, warp, lane, params, read_global: read }
    }

    #[test]
    fn eval_matches_linear_thread_decomposition() {
        let mut t = arena();
        let x = t.special(SpecialReg::TidX);
        let y = t.special(SpecialReg::TidY);
        let read = |_: u64| 0;
        // Block (8,8): warp 1 lane 3 is linear thread 35 = (3, 4).
        let c = ctx(8, 8, 1, 3, &[], &read);
        assert_eq!(t.eval(x, &c), Some(3));
        assert_eq!(t.eval(y, &c), Some(4));
        // tid.x under a promoting block is a lane function: warp 0 lane 3
        // agrees with warp 1 lane 3.
        let c0 = ctx(8, 8, 0, 3, &[], &read);
        assert_eq!(t.eval(x, &c0), Some(3));
        assert_ne!(t.eval(y, &c0), t.eval(y, &c), "tid.y differs across warps");
    }

    #[test]
    fn eval_reads_initial_memory_and_params() {
        let mut t = arena();
        let read = |addr: u64| if addr == 0x100 { 77 } else { 0 };
        let base = t.constant(0x100);
        let ld = t.load(MemSpace::Global, base, 0, 0);
        let c = ctx(8, 8, 0, 0, &[11, 22], &read);
        assert_eq!(t.eval(ld, &c), Some(77));
        let p1 = t.constant(0);
        let pld = t.load(MemSpace::Param, p1, 4, 0);
        assert_eq!(t.eval(pld, &c), Some(22));
        let odd = t.constant(0x101);
        let bad = t.load(MemSpace::Global, odd, 0, 0);
        assert_eq!(t.eval(bad, &c), None, "unaligned evaluation refuses");
        let neg = t.constant(u32::MAX);
        let under = t.load(MemSpace::Global, neg, i32::MIN, 0);
        assert_eq!(t.eval(under, &c), None, "negative address refuses");
    }

    #[test]
    fn ite_merges_and_folds() {
        let mut t = arena();
        let x = t.special(SpecialReg::TidX);
        let y = t.special(SpecialReg::TidY);
        let n = t.special(SpecialReg::NtidX);
        let k = t.constant(4);
        let p = t.cmp(CmpOp::Lt, false, n, k);
        let m = t.ite(p, x, y);
        assert_eq!(t.deps(m), Deps::TIDX.union(Deps::TIDY));
        assert_eq!(t.ite(p, x, x), x, "equal arms collapse");
        let tru = t.constant(1);
        assert_eq!(t.ite(tru, x, y), x, "constant condition selects");
        // A thread-dependent condition poisons uniformity even over
        // uniform arms.
        let q = t.cmp(CmpOp::Lt, false, x, k);
        let a = t.constant(10);
        let b = t.constant(20);
        let mix = t.ite(q, a, b);
        assert_eq!(t.deps(mix), Deps::TIDX);
    }

    #[test]
    fn not_flips_booleans() {
        let mut t = arena();
        let tru = t.constant(1);
        let fls = t.not(tru);
        assert_eq!(t.as_const(fls), Some(0));
        let x = t.special(SpecialReg::TidX);
        let k = t.constant(4);
        let p = t.cmp(CmpOp::Lt, false, x, k);
        let np = t.not(p);
        let c = ctx(8, 8, 0, 1, &[], &|_| 0);
        assert_eq!(t.eval(p, &c), Some(1));
        assert_eq!(t.eval(np, &c), Some(0));
        assert_eq!(t.not(np), p, "double negation folds back via xor");
    }

    #[test]
    fn havoc_is_fresh_and_opaque() {
        let mut t = arena();
        let h1 = t.havoc();
        let h2 = t.havoc();
        assert_ne!(h1, h2);
        assert_eq!(t.deps(h1), Deps::OTHER);
        assert_eq!(t.eval(h1, &ctx(8, 8, 0, 0, &[], &|_| 0)), None);
    }

    #[test]
    fn deps_display_and_subsets() {
        let d = Deps::TIDX.union(Deps::LANE);
        assert!(Deps::TIDX.subset_of(d));
        assert!(!d.subset_of(Deps::LANE));
        assert!(Deps::NONE.subset_of(Deps::NONE));
        assert_eq!(format!("{d}"), "{tid.x,laneid}");
        assert_eq!(format!("{}", Deps::NONE), "{}");
    }
}
