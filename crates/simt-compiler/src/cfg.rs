//! Control-flow graph construction over a kernel's instruction stream.

use simt_isa::{Kernel, Op};

/// Identifier of a basic block (index into [`Cfg::blocks`]).
pub type BlockId = usize;

/// A basic block: a maximal single-entry, single-exit-point instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: usize,
    /// Last instruction index (exclusive).
    pub end: usize,
    /// Successor blocks in the CFG.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks in the CFG.
    pub preds: Vec<BlockId>,
}

impl BasicBlock {
    /// Instruction indices covered by this block.
    #[must_use]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for the virtual exit block (empty range).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A control-flow graph. Block 0 is the entry; the last block is a virtual
/// exit that every `Exit` instruction flows into (it has an empty
/// instruction range), which keeps the post-dominator analysis single-exit.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The blocks, in program order; the final entry is the virtual exit.
    pub blocks: Vec<BasicBlock>,
    /// Map from instruction index to owning block.
    pub block_of: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `kernel`.
    ///
    /// Leaders are instruction 0, every branch target, and every
    /// instruction following a branch or `Exit`. A guarded branch has two
    /// successors (target and fall-through); an unguarded branch only its
    /// target; `Exit` flows to the virtual exit block.
    #[must_use]
    pub fn build(kernel: &Kernel) -> Cfg {
        let n = kernel.instrs.len();
        assert!(n > 0, "cannot build a CFG for an empty kernel");
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, i) in kernel.instrs.iter().enumerate() {
            match i.op {
                Op::Bra { target } => {
                    leader[target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Op::Exit if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len();
            let is_last = pc + 1 == n || leader[pc + 1];
            if is_last {
                blocks.push(BasicBlock {
                    start,
                    end: pc + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc + 1;
            }
        }
        // Virtual exit block.
        let exit_id = blocks.len();
        blocks.push(BasicBlock { start: n, end: n, succs: Vec::new(), preds: Vec::new() });

        // Wire successors.
        for b in 0..exit_id {
            let last_pc = blocks[b].end - 1;
            let instr = &kernel.instrs[last_pc];
            let mut succs = Vec::new();
            match instr.op {
                Op::Bra { target } => {
                    succs.push(block_of[target]);
                    if instr.guard.is_some() && blocks[b].end < n {
                        let ft = block_of[blocks[b].end];
                        if !succs.contains(&ft) {
                            succs.push(ft);
                        }
                    }
                }
                Op::Exit => succs.push(exit_id),
                _ => {
                    if blocks[b].end < n {
                        succs.push(block_of[blocks[b].end]);
                    } else {
                        // Fell off the end of the program; treat as exit.
                        succs.push(exit_id);
                    }
                }
            }
            blocks[b].succs = succs;
        }
        for b in 0..blocks.len() {
            for s in blocks[b].succs.clone() {
                blocks[s].preds.push(b);
            }
        }
        Cfg { blocks, block_of }
    }

    /// Number of blocks including the virtual exit.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the CFG has no blocks (never happens for valid kernels).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Id of the virtual exit block.
    #[must_use]
    pub fn exit_block(&self) -> BlockId {
        self.blocks.len() - 1
    }

    /// Blocks in reverse post-order from the entry (good iteration order
    /// for forward dataflow).
    #[must_use]
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS to avoid recursion limits on long kernels.
        let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*i];
                *i += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, Guard, Instruction, KernelBuilder, MemSpace, Operand, Pred, Reg};

    fn straight_line() -> Kernel {
        let mut b = KernelBuilder::new("sl");
        let x = b.mov(1u32);
        let y = b.iadd(x, 2u32);
        b.store(MemSpace::Global, 0u32, y, 0);
        b.finish()
    }

    #[test]
    fn straight_line_is_one_block_plus_exit() {
        let k = straight_line();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.len(), 2);
        assert_eq!(cfg.blocks[0].range(), 0..k.len());
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        assert!(cfg.blocks[cfg.exit_block()].is_empty());
    }

    #[test]
    fn if_then_produces_diamond_shape() {
        let mut b = KernelBuilder::new("it");
        let t = b.special(simt_isa::SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        b.if_then(Guard::if_true(p), |b| {
            let one = b.mov(1u32);
            b.store(MemSpace::Global, 0u32, one, 0);
        });
        let k = b.finish();
        let cfg = Cfg::build(&k);
        // Blocks: [s2r,setp,bra] [mov,store] [exit] [virtual].
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 2, "guarded branch has 2 successors");
        // Both the branch-taken path and the body converge on the exit block.
        assert!(cfg.blocks[0].succs.contains(&2));
        assert!(cfg.blocks[0].succs.contains(&1));
        assert_eq!(cfg.blocks[1].succs, vec![2]);
    }

    #[test]
    fn loop_back_edge_present() {
        let mut b = KernelBuilder::new("lp");
        let i = b.mov(0u32);
        b.do_while(|b| {
            b.iadd_to(i, i, 1u32);
            let p = b.setp(CmpOp::Lt, i, 8u32);
            Guard::if_true(p)
        });
        let k = b.finish();
        let cfg = Cfg::build(&k);
        // Find block containing the loop body start (instruction 1).
        let body = cfg.block_of[1];
        assert!(
            cfg.blocks[body].preds.len() >= 2,
            "loop head has entry and back-edge predecessors: {:?}",
            cfg.blocks
        );
    }

    #[test]
    fn unguarded_branch_has_single_successor() {
        // 0: bra 2 ; 1: mov (dead) ; 2: exit
        let k = Kernel::new(
            "u",
            vec![
                Instruction::new(Op::Bra { target: 2 }, None, None, vec![]),
                Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(0)]),
                Instruction::new(Op::Exit, None, None, vec![]),
            ],
        );
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks[cfg.block_of[0]].succs.len(), 1);
        // The dead block is still constructed.
        assert_eq!(cfg.block_of[1], 1);
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let mut b = KernelBuilder::new("rpo");
        let t = b.special(simt_isa::SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        b.if_then_else(
            Guard::if_true(p),
            |b| {
                let _ = b.mov(1u32);
            },
            |b| {
                let _ = b.mov(2u32);
            },
        );
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), cfg.len(), "all blocks reachable");
        // Every block appears before its dominated join in RPO terms:
        // entry first, exit last.
        assert_eq!(*rpo.last().unwrap(), cfg.exit_block());
    }

    #[test]
    fn self_loop_guard() {
        // 0: @P0 bra 0 ; 1: exit
        let k = Kernel::new(
            "sl",
            vec![
                Instruction::new(Op::Bra { target: 0 }, None, None, vec![])
                    .with_guard(Guard::if_true(Pred(0))),
                Instruction::new(Op::Exit, None, None, vec![]),
            ],
        );
        let cfg = Cfg::build(&k);
        let b0 = cfg.block_of[0];
        assert!(cfg.blocks[b0].succs.contains(&b0), "self loop");
        assert!(cfg.blocks[b0].preds.contains(&b0));
    }
}
