//! The DARSIE compiler: static TB-redundancy marking and launch-time
//! finalization (paper Sections 2 and 4.2).
//!
//! The pipeline is:
//!
//! 1. [`Cfg::build`] — basic blocks and edges;
//! 2. [`PostDoms::compute`] + [`ReconvergenceTable::compute`] — SIMT
//!    reconvergence points for the simulator's divergence stack;
//! 3. [`analysis::analyze`] — the redundancy dataflow over the
//!    [`class::AbsClass`] lattice (redundancy × lane-pattern);
//! 4. [`compile`] — bundles it all into a [`CompiledKernel`] with
//!    per-instruction [`Marking`]s;
//! 5. [`LaunchPlan::new`] — at kernel launch, promotes conditionally
//!    redundant instructions using the TB-dimension check and derives the
//!    instruction sets for DARSIE, DAC-IDEAL and UV.
//!
//! ```
//! use simt_isa::{KernelBuilder, LaunchConfig, MemSpace, SpecialReg};
//! use simt_compiler::{compile, LaunchPlan};
//!
//! let mut b = KernelBuilder::new("example");
//! let t = b.special(SpecialReg::TidX);
//! let addr = b.shl_imm(t, 2);
//! let v = b.load(MemSpace::Global, addr, 0);
//! b.store(MemSpace::Global, addr, v, 4096);
//! let ck = compile(b.finish());
//!
//! // A 16x16 threadblock passes the launch-time check, so the whole
//! // tid.x-derived chain (including the load) becomes skippable.
//! let plan = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, (16u32, 16u32)));
//! assert_eq!(plan.num_skippable(), 3);
//! ```
//!
//! [`Marking`]: simt_isa::Marking

pub mod affine;
pub mod analysis;
pub mod blame;
pub mod cfg;
pub mod class;
pub mod dom;
pub mod pass;
pub mod refine;
pub mod term;
pub mod trip;

pub use affine::{Affine, AffineVal, NEG_INF, POS_INF};
pub use analysis::{analyze, Analysis, AnalysisOptions};
pub use blame::{blame, Blame, BlameChain, BlameSeed};
pub use cfg::{BasicBlock, BlockId, Cfg};
pub use class::{AbsClass, Pat, Red, Taxonomy};
pub use dom::{Doms, NaturalLoop, NaturalLoops, PostDoms, ReconvergenceTable, RECONVERGE_AT_EXIT};
pub use pass::{compile, compile_with_options, promotes_tid_y, CompiledKernel, LaunchPlan};
pub use refine::{refine, RefineReason, Refined, Upgrade};
pub use term::{fold_alu, Deps, EvalCtx, TermArena, TermId, TermNode};
pub use trip::{infer_trips, LoopTrip, TripCounts, MAX_TRIPS};
