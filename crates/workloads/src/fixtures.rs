//! Fixture kernels pinning the verifier's and analyzer's behavior:
//! deliberately racy kernels for the shared-memory race detector, memory
//! access patterns for the `P1xx` performance lints, and kernels whose
//! markings only the refinement passes can improve — each with a matching
//! negative control.
//!
//! These are *not* part of the paper's Table 1 catalog: each one models a
//! bug class (or an analysis win) the toolchain must pin down.
//!
//! | Fixture | Static verdict | Dynamic verdict |
//! |---|---|---|
//! | [`racy_missing_barrier`] | `V301` | `V303` |
//! | [`racy_same_word`] | `V301` | `V303` |
//! | [`racy_nonaffine`] | `V302` only | `V303` |
//! | [`clean_two_phase`] | clean | clean |
//!
//! | Fixture | Expected lint |
//! |---|---|
//! | [`conflict_stride`] | `P101` (32-way bank conflict) |
//! | [`conflict_free`] | none |
//! | [`uncoalesced_stride`] | `P102` (32 lines where 1 suffices) |
//! | [`coalesced_stride`] | none |
//! | [`nonaffine_addr`] | `P103` (no static bound) |
//!
//! | Fixture | Baseline | Refined | Win |
//! |---|---|---|---|
//! | [`refine_entry_win`] | `V` | `CR`, promoted by (16,4) | skippable |
//! | [`refine_entry_negative`] | `V` | `V` (warpid guard) | none |
//! | [`refine_branch_win`] | `V` | `DR` on the `v == 42` edge | skippable |
//! | [`refine_affine_win`] | `CR` | `DR` (tid terms cancel) | skippable |
//! | [`refine_tidy_win`] | `V` | `CRxy`, promoted by (8,4) | skippable |
//!
//! | Fixture | Expected prover verdict |
//! |---|---|
//! | [`symex_forged_dr`] | `S401` (forged DR on a warpid value, replay-confirmed) |
//! | [`symex_lane_dr`] | clean (laneid chain; only the term domain proves it) |
//! | [`symex_opaque_escape`] | `S402` (forged DR on an atomic result: no proof, no witness) |
//! | [`symex_opaque_control`] | clean (same kernel, honest markings) |
//! | [`symex_forged_uniform_branch`] | `S403` (forged uniform class on a `tid.x` branch) |
//! | [`symex_uniform_branch`] | clean (genuinely uniform `ntid.x` branch) |
//! | [`symex_loop_reduction`] | proved (symbolic-trip reduction; needs loop summarization) |
//! | [`symex_warp_trip_control`] | `S402` (warp-dependent trip count taints the counter) |
//! | [`symex_uniform_base`] | proved (uniform-not-exact base pointer; needs the TB-uniform bit) |
//! | [`symex_divergent_write_control`] | `S402` (uniform value, divergent write: bit must not fire) |
//!
//! | Fixture | Expected trip counts | Expected lint |
//! |---|---|---|
//! | [`cost_straight_line`] | no loops | none |
//! | [`cost_const_loop`] | `[8, 8]` | none |
//! | [`cost_param_loop`] | `[6, 6]` (launch parameter 1) | none |
//! | [`cost_nested_loop`] | outer `[4, 4]`, inner `[2, 2]` | none |
//! | [`cost_geometric_loop`] | `[4, 4]` (doubling counter) | none |
//! | [`cost_unbounded_control`] | unbounded (data-dependent bound) | `E201` |

use gpu_sim::GlobalMemory;
use simt_compiler::{compile, AbsClass, CompiledKernel};
use simt_isa::{
    AtomOp, CmpOp, Dim3, Guard, Instruction, KernelBuilder, LaunchConfig, Marking, MemSpace, Op,
    Operand, SpecialReg, Value,
};

/// One race-detector fixture: a compiled kernel with its launch and
/// initial memory, ready for `simt_verify::verify_full`.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// Stable fixture name (also the kernel name).
    pub name: &'static str,
    /// The compiled kernel.
    pub ck: CompiledKernel,
    /// Single-TB launch with an output buffer as parameter 0.
    pub launch: LaunchConfig,
    /// Memory holding the output buffer.
    pub memory: GlobalMemory,
}

const THREADS: u32 = 64;

fn finish_sized(name: &'static str, b: KernelBuilder, block: Dim3, out_bytes: u64) -> Fixture {
    let ck = compile(b.finish());
    let mut memory = GlobalMemory::new();
    let out = memory.alloc(out_bytes);
    let launch = LaunchConfig::new(1u32, block).with_params(vec![Value(out as u32)]);
    Fixture { name, ck, launch, memory }
}

fn finish(name: &'static str, b: KernelBuilder) -> Fixture {
    finish_sized(name, b, Dim3::one_d(THREADS), u64::from(THREADS) * 4)
}

/// Stores the result of loading shared word 0 out to global memory;
/// keeps every fixture's loaded value live.
fn writeback(b: &mut KernelBuilder, value: simt_isa::Reg) {
    let t = b.special(SpecialReg::TidX);
    let out = b.param(0);
    let off = b.shl_imm(t, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, value, 0);
}

/// Classic missing `__syncthreads()`: thread `t` writes shared word `t`,
/// then every thread reads word 0 with no barrier in between. Thread 0's
/// write races every other thread's read.
#[must_use]
pub fn racy_missing_barrier() -> Fixture {
    let mut b = KernelBuilder::new("racy_missing_barrier");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(THREADS * 4);
    let off = b.shl_imm(t, 2);
    let waddr = b.iadd(off, smem);
    b.store(MemSpace::Shared, waddr, t, 0);
    let v = b.load(MemSpace::Shared, smem, 0);
    writeback(&mut b, v);
    finish("racy_missing_barrier", b)
}

/// Unsynchronized reduction bug: every thread stores its tid to shared
/// word 0 in the same epoch — a write/write race whose surviving value is
/// interleaving-dependent.
#[must_use]
pub fn racy_same_word() -> Fixture {
    let mut b = KernelBuilder::new("racy_same_word");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(16);
    b.store(MemSpace::Shared, smem, t, 0);
    b.barrier();
    let v = b.load(MemSpace::Shared, smem, 0);
    writeback(&mut b, v);
    finish("racy_same_word", b)
}

/// Racy histogram with a non-affine bucket index: the address `tid.x & 1`
/// defeats the static affine classifier (a `V302` escalation, not a
/// proof), while the dynamic sanitizer pinpoints the collision between
/// threads that share a bucket.
#[must_use]
pub fn racy_nonaffine() -> Fixture {
    let mut b = KernelBuilder::new("racy_nonaffine");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(16);
    let bucket = b.and(t, 1u32);
    let off = b.shl_imm(bucket, 2);
    let waddr = b.iadd(off, smem);
    b.store(MemSpace::Shared, waddr, t, 0);
    b.barrier();
    let v = b.load(MemSpace::Shared, smem, 0);
    writeback(&mut b, v);
    finish("racy_nonaffine", b)
}

/// Correct two-phase exchange (the control): thread `t` writes word `t`,
/// a barrier closes the epoch, then thread `t` reads the mirrored word
/// `63-t`. Both detectors must stay silent.
#[must_use]
pub fn clean_two_phase() -> Fixture {
    let mut b = KernelBuilder::new("clean_two_phase");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(THREADS * 4);
    let off = b.shl_imm(t, 2);
    let waddr = b.iadd(off, smem);
    b.store(MemSpace::Shared, waddr, t, 0);
    b.barrier();
    let mirror = b.isub(4 * (THREADS - 1), off);
    let raddr = b.iadd(mirror, smem);
    let v = b.load(MemSpace::Shared, raddr, 0);
    writeback(&mut b, v);
    finish("clean_two_phase", b)
}

/// The three racy fixtures, in documentation order.
#[must_use]
pub fn racy() -> Vec<Fixture> {
    vec![racy_missing_barrier(), racy_same_word(), racy_nonaffine()]
}

/// Worst-case shared-memory banking: stride-128 addresses put every lane
/// of a warp in bank 0, serializing each access over 32 bank passes
/// (`P101` on both the store and the read-back load).
#[must_use]
pub fn conflict_stride() -> Fixture {
    let mut b = KernelBuilder::new("conflict_stride");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(THREADS * 128);
    let off = b.shl_imm(t, 7);
    let addr = b.iadd(off, smem);
    b.store(MemSpace::Shared, addr, t, 0);
    b.barrier();
    let v = b.load(MemSpace::Shared, addr, 0);
    writeback(&mut b, v);
    finish("conflict_stride", b)
}

/// The banking control: stride-4 addresses hit 32 distinct banks, so both
/// shared accesses complete in one pass and `P101` stays silent.
#[must_use]
pub fn conflict_free() -> Fixture {
    let mut b = KernelBuilder::new("conflict_free");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(THREADS * 4);
    let off = b.shl_imm(t, 2);
    let addr = b.iadd(off, smem);
    b.store(MemSpace::Shared, addr, t, 0);
    b.barrier();
    let v = b.load(MemSpace::Shared, addr, 0);
    writeback(&mut b, v);
    finish("conflict_free", b)
}

/// Worst-case global coalescing: a stride-128 store touches one 128-byte
/// line per lane — 32 transactions where a coalesced access of the same
/// width needs one (`P102`).
#[must_use]
pub fn uncoalesced_stride() -> Fixture {
    let mut b = KernelBuilder::new("uncoalesced_stride");
    let t = b.special(SpecialReg::TidX);
    let out = b.param(0);
    let off = b.shl_imm(t, 7);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, t, 0);
    finish_sized("uncoalesced_stride", b, Dim3::one_d(THREADS), u64::from(THREADS) * 128)
}

/// The coalescing control: a stride-4 store covers each warp's 128 bytes
/// with at most two lines (one when aligned), matching the ideal, so
/// `P102` stays silent.
#[must_use]
pub fn coalesced_stride() -> Fixture {
    let mut b = KernelBuilder::new("coalesced_stride");
    let t = b.special(SpecialReg::TidX);
    let out = b.param(0);
    let off = b.shl_imm(t, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, t, 0);
    finish("coalesced_stride", b)
}

/// A global store whose address flows through `tid.x & 1`: not
/// thread-affine, so the predictor must report `P103` (no static bound)
/// instead of guessing.
#[must_use]
pub fn nonaffine_addr() -> Fixture {
    let mut b = KernelBuilder::new("nonaffine_addr");
    let t = b.special(SpecialReg::TidX);
    let out = b.param(0);
    let bucket = b.and(t, 1u32);
    let off = b.shl_imm(bucket, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, t, 0);
    finish("nonaffine_addr", b)
}

/// The memory-performance fixtures, in documentation order.
#[must_use]
pub fn perf() -> Vec<Fixture> {
    vec![
        conflict_stride(),
        conflict_free(),
        uncoalesced_stride(),
        coalesced_stride(),
        nonaffine_addr(),
    ]
}

/// Stores `value` to `out[tid.y * block.x + tid.x]` for a 2D block of
/// width `bx`.
fn writeback_2d(b: &mut KernelBuilder, value: simt_isa::Reg, bx: u32) {
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let out = b.param(0);
    let lin = b.imad(ty, bx, tx);
    let off = b.shl_imm(lin, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, value, 0);
}

/// Entry-uniform win: a conditional `mov` into a never-otherwise-written
/// register reads the register-file's zero-initialized old value. The
/// baseline calls that old value Vector; the refined analysis proves the
/// result conditionally redundant, and the promoting `(16,4)` block makes
/// it skippable.
#[must_use]
pub fn refine_entry_win() -> Fixture {
    let mut b = KernelBuilder::new("refine_entry_win");
    let t = b.special(SpecialReg::TidX);
    let p = b.setp(CmpOp::Lt, t, 8u32);
    let dst = b.alloc();
    b.emit(
        Instruction::new(Op::Mov, Some(dst), None, vec![Operand::Imm(7)])
            .with_guard(Guard::if_true(p)),
    );
    let y = b.iadd(dst, 5u32);
    writeback_2d(&mut b, y, 16);
    finish_sized("refine_entry_win", b, Dim3::two_d(16, 4), u64::from(THREADS) * 4)
}

/// Entry-uniform negative control: the same guarded `mov`, but the guard
/// compares `warpid`, which differs across warps — refinement must keep
/// the result Vector.
#[must_use]
pub fn refine_entry_negative() -> Fixture {
    let mut b = KernelBuilder::new("refine_entry_negative");
    let w = b.special(SpecialReg::WarpId);
    let p = b.setp(CmpOp::Lt, w, 1u32);
    let dst = b.alloc();
    b.emit(
        Instruction::new(Op::Mov, Some(dst), None, vec![Operand::Imm(7)])
            .with_guard(Guard::if_true(p)),
    );
    let y = b.iadd(dst, 5u32);
    writeback(&mut b, y);
    finish("refine_entry_negative", b)
}

/// Branch-edge win: `v` is genuinely Vector (a loaded value plus
/// `warpid`), but on the taken edge of `if (v == 42)` it is pinned to the
/// uniform constant, so the body's `v + 1` becomes definitely redundant.
/// The input buffer holds `42 - warpid(t)` so every lane takes the branch.
#[must_use]
pub fn refine_branch_win() -> Fixture {
    let mut b = KernelBuilder::new("refine_branch_win");
    let t = b.special(SpecialReg::TidX);
    let off = b.shl_imm(t, 2);
    let inp = b.param(1);
    let a = b.iadd(inp, off);
    let vl = b.load(MemSpace::Global, a, 0);
    let w = b.special(SpecialReg::WarpId);
    let v = b.iadd(vl, w);
    let p = b.setp(CmpOp::Eq, v, 42u32);
    let y = b.alloc();
    b.mov_to(y, 0u32);
    b.if_then(Guard::if_true(p), |b| {
        b.iadd_to(y, v, 1u32);
    });
    writeback(&mut b, y);
    let mut fx = finish("refine_branch_win", b);
    let inp_buf = fx.memory.alloc(u64::from(THREADS) * 4);
    let values: Vec<u32> = (0..THREADS).map(|t| 42 - t / 32).collect();
    fx.memory.write_slice_u32(inp_buf, &values);
    fx.launch.params.push(Value(inp_buf as u32));
    fx
}

/// Affine-closure win: `(t + 7) - t` is conditionally redundant under the
/// pointwise lattice, but closing over the tid coefficients cancels the
/// thread term and proves it definitely redundant — skippable even under
/// this non-promoting 1D launch.
#[must_use]
pub fn refine_affine_win() -> Fixture {
    let mut b = KernelBuilder::new("refine_affine_win");
    let t = b.special(SpecialReg::TidX);
    let u = b.iadd(t, 7u32);
    let y = b.isub(u, t);
    writeback(&mut b, y);
    finish("refine_affine_win", b)
}

/// tid.y-dimension win: `tid.y * 8 + tid.x` is Vector to the baseline
/// (which tracks only tid.x), conditionally redundant in both dimensions
/// after refinement, and the `(8,4)` block promotes it to skippable.
#[must_use]
pub fn refine_tidy_win() -> Fixture {
    let mut b = KernelBuilder::new("refine_tidy_win");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let lin = b.imad(ty, 8u32, tx);
    let off = b.shl_imm(lin, 2);
    let out = b.param(0);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, lin, 0);
    finish_sized("refine_tidy_win", b, Dim3::two_d(8, 4), 32 * 4)
}

/// The refinement fixtures, in documentation order.
#[must_use]
pub fn refinement() -> Vec<Fixture> {
    vec![
        refine_entry_win(),
        refine_entry_negative(),
        refine_branch_win(),
        refine_affine_win(),
        refine_tidy_win(),
    ]
}

/// First instruction matching `pred` — for tampering one site of a
/// compiled fixture.
fn pc_of(ck: &CompiledKernel, pred: impl Fn(&Instruction) -> bool) -> usize {
    ck.kernel.instrs.iter().position(pred).expect("fixture pattern present")
}

/// Forged DR marking the translation validator must *disprove*:
/// `warpid + 5` genuinely differs between warps, so hand-upgrading its
/// marking to `Redundant` is unsound for every launch with two warps.
/// The prover owes an `S401` whose counterexample the functional
/// executor confirms.
#[must_use]
pub fn symex_forged_dr() -> Fixture {
    let mut b = KernelBuilder::new("symex_forged_dr");
    let w = b.special(SpecialReg::WarpId);
    let y = b.iadd(w, 5u32);
    writeback(&mut b, y);
    let mut fx = finish("symex_forged_dr", b);
    let pc = pc_of(&fx.ck, |i| i.op == Op::IAdd && i.srcs.get(1) == Some(&Operand::Imm(5)));
    fx.ck.markings[pc] = Marking::Redundant;
    fx
}

/// The `S401` negative control, and the case where *only* the term
/// domain can prove: `laneid * 2 + 5` is definitely redundant (the lane
/// pattern repeats in every warp) but is not TB-uniform, so the affine
/// fallback cannot discharge it — the deps ⊆ {laneid} rule must.
#[must_use]
pub fn symex_lane_dr() -> Fixture {
    let mut b = KernelBuilder::new("symex_lane_dr");
    let l = b.special(SpecialReg::LaneId);
    let d = b.shl_imm(l, 1);
    let y = b.iadd(d, 5u32);
    writeback(&mut b, y);
    finish("symex_lane_dr", b)
}

/// Forged DR on a value the term domain cannot see through: an atomic
/// result is interleaving-dependent, so no proof exists — but neither
/// does a concrete counterexample (the symbolic value never evaluates).
/// The honest verdict is the conservative `S402`.
#[must_use]
pub fn symex_opaque_escape() -> Fixture {
    let mut fx = symex_opaque_control();
    let pc = pc_of(&fx.ck, |i| i.op == Op::IAdd && i.srcs.get(1) == Some(&Operand::Imm(0)));
    fx.ck.kernel.name = "symex_opaque_escape".into();
    fx.ck.markings[pc] = Marking::Redundant;
    Fixture { name: "symex_opaque_escape", ..fx }
}

/// The `S402` negative control: the same atomic-result kernel with its
/// honest `Vector` markings proves clean (the escape is never claimed
/// redundant, so nothing is owed a proof).
#[must_use]
pub fn symex_opaque_control() -> Fixture {
    let mut b = KernelBuilder::new("symex_opaque_control");
    let out = b.param(0);
    let h = b.atom(AtomOp::Add, out, 1u32);
    let y = b.iadd(h, 0u32);
    writeback(&mut b, y);
    finish("symex_opaque_control", b)
}

/// Forged branch-sync claim: the branch predicate `tid.x < 8` diverges
/// inside every warp wider than 8 lanes, so hand-upgrading the branch's
/// class to uniform-redundant (the condition under which DARSIE skips
/// re-fetching both paths) breaks the single-control-flow-history
/// requirement. The prover owes an `S403` with concrete divergent
/// threads.
#[must_use]
pub fn symex_forged_uniform_branch() -> Fixture {
    let mut b = KernelBuilder::new("symex_forged_uniform_branch");
    let t = b.special(SpecialReg::TidX);
    let p = b.setp(CmpOp::Lt, t, 8u32);
    let y = b.alloc();
    b.mov_to(y, 0u32);
    b.if_then(Guard::if_true(p), |b| {
        b.iadd_to(y, y, 1u32);
    });
    writeback(&mut b, y);
    let mut fx = finish("symex_forged_uniform_branch", b);
    let pc = pc_of(&fx.ck, |i| matches!(i.op, Op::Bra { .. }) && i.guard.is_some());
    fx.ck.classes[pc] = AbsClass::UNIFORM;
    fx
}

/// The `S403` negative control: the same shape branching on `ntid.x`,
/// which every thread of every launch agrees on; the analysis itself
/// classes the branch uniform and the prover must concur.
#[must_use]
pub fn symex_uniform_branch() -> Fixture {
    let mut b = KernelBuilder::new("symex_uniform_branch");
    let n = b.special(SpecialReg::NtidX);
    let p = b.setp(CmpOp::Lt, n, 100u32);
    let y = b.alloc();
    b.mov_to(y, 0u32);
    b.if_then(Guard::if_true(p), |b| {
        b.iadd_to(y, y, 1u32);
    });
    writeback(&mut b, y);
    finish("symex_uniform_branch", b)
}

/// A reduction loop whose trip count is a launch parameter: every
/// thread walks the same array prefix and accumulates the same partial
/// sums, so the (forged) DR on the accumulator is *true* — but bounded
/// unrolling can never retire a symbolic trip count. Loop summarization
/// must close the body's dependency sets (all empty: the data comes
/// through a TB-uniform address) and prove the claim outright.
#[must_use]
pub fn symex_loop_reduction() -> Fixture {
    let mut b = KernelBuilder::new("symex_loop_reduction");
    let base = b.param(0);
    let n = b.param(1);
    let acc = b.alloc();
    b.mov_to(acc, 0u32);
    let i = b.alloc();
    b.mov_to(i, 0u32);
    b.do_while(|b| {
        let off = b.shl_imm(i, 2);
        let addr = b.iadd(base, off);
        let v = b.load(MemSpace::Global, addr, 0);
        b.iadd_to(acc, acc, v);
        b.iadd_to(i, i, 1u32);
        let p = b.setp(CmpOp::Lt, i, n);
        Guard::if_true(p)
    });
    writeback(&mut b, acc);
    let mut fx = finish("symex_loop_reduction", b);
    let pc = pc_of(&fx.ck, |ins| ins.op == Op::IAdd && ins.dst == Some(acc));
    fx.ck.markings[pc] = Marking::Redundant;
    fx
}

/// The summarization negative control: the same loop shape but with a
/// *warp-dependent* trip count (`while (i < warpid)`). Summarization
/// still covers it — the run completes — but the trip-condition taint
/// (`warpid`) flows into every in-loop visit, so the forged DR on the
/// counter must stay an honest `S402`: the first-iteration terms are
/// constants, so no concrete witness exists either.
#[must_use]
pub fn symex_warp_trip_control() -> Fixture {
    let mut b = KernelBuilder::new("symex_warp_trip_control");
    let w = b.special(SpecialReg::WarpId);
    let i = b.alloc();
    b.mov_to(i, 0u32);
    b.do_while(|b| {
        b.iadd_to(i, i, 1u32);
        let p = b.setp(CmpOp::Lt, i, w);
        Guard::if_true(p)
    });
    writeback(&mut b, i);
    let mut fx = finish("symex_warp_trip_control", b);
    let pc = pc_of(&fx.ck, |ins| ins.op == Op::IAdd && ins.dst == Some(i));
    fx.ck.markings[pc] = Marking::Redundant;
    fx
}

/// A TB-uniform-but-not-exact value the affine fallback must now prove
/// via the uniformity bit: a thread-partial guarded `exit` aborts the
/// symbolic engine (the term domain has no mask concept), and the value
/// — loaded through a base pointer that is uniform without being any
/// one known constant — has no exact interval. The divergence-aware
/// domain carries the TB-uniform bit through the parameter load and the
/// dependent global load, discharging the (true) DR claim.
#[must_use]
pub fn symex_uniform_base() -> Fixture {
    let mut b = KernelBuilder::new("symex_uniform_base");
    let t = b.special(SpecialReg::TidX);
    let p = b.setp(CmpOp::Gt, t, 4096u32);
    b.emit(Instruction::new(Op::Exit, None, None, vec![]).with_guard(Guard::if_true(p)));
    let base = b.param(0);
    let v = b.load(MemSpace::Global, base, 0);
    writeback(&mut b, v);
    let mut fx = finish("symex_uniform_base", b);
    let pc = pc_of(&fx.ck, |ins| ins.op == Op::Ld(MemSpace::Global) && ins.dst == Some(v));
    fx.ck.markings[pc] = Marking::Redundant;
    fx
}

/// The uniformity-bit negative control: a TB-uniform value written only
/// on a thread-divergent path, then *read after the join*, where every
/// thread holds a path-dependent mix. The divergent-region write must
/// clear the TB-uniform bit (else the affine domain would falsely prove
/// the forged DR), the term domain sees the `tid.x` dependence, and the
/// concrete witness values coincide (the unset parameter reads as zero
/// on both sides) — so the honest verdict is `S402`, never a proof.
#[must_use]
pub fn symex_divergent_write_control() -> Fixture {
    let mut b = KernelBuilder::new("symex_divergent_write_control");
    let t = b.special(SpecialReg::TidX);
    let p = b.setp(CmpOp::Lt, t, 16u32);
    let secret = b.param(1);
    let v = b.alloc();
    b.mov_to(v, 0u32);
    b.if_then(Guard::if_true(p), |b| {
        b.mov_to(v, secret);
    });
    let y = b.iadd(v, 0u32);
    writeback(&mut b, y);
    let mut fx = finish("symex_divergent_write_control", b);
    let pc = pc_of(&fx.ck, |ins| ins.op == Op::IAdd && ins.dst == Some(y));
    fx.ck.markings[pc] = Marking::Redundant;
    fx
}

/// Straight-line estimator fixture: no loops, so every block is visited
/// exactly once and the cycle bracket is a tight envelope around pure
/// issue cost. The baseline for hand-checking the cost model.
#[must_use]
pub fn cost_straight_line() -> Fixture {
    let mut b = KernelBuilder::new("cost_straight_line");
    let t = b.special(SpecialReg::TidX);
    let a = b.iadd(t, 3u32);
    let c = b.shl_imm(a, 1);
    let y = b.isub(c, t);
    writeback(&mut b, y);
    finish("cost_straight_line", b)
}

/// Constant-trip loop: the do-while body increments `i` from 0 and
/// continues while `i < 8`, so the affine solver must pin exactly
/// `[8, 8]` body visits.
#[must_use]
pub fn cost_const_loop() -> Fixture {
    let mut b = KernelBuilder::new("cost_const_loop");
    let acc = b.alloc();
    b.mov_to(acc, 0u32);
    let i = b.alloc();
    b.mov_to(i, 0u32);
    b.do_while(|b| {
        b.iadd_to(acc, acc, 3u32);
        b.iadd_to(i, i, 1u32);
        let p = b.setp(CmpOp::Lt, i, 8u32);
        Guard::if_true(p)
    });
    writeback(&mut b, acc);
    finish("cost_const_loop", b)
}

/// Launch-parameter trip count: the loop bound is parameter 1, resolved
/// at launch time to 6, so the solver must pin `[6, 6]` — a bound that
/// exists only per-launch, never per-kernel.
#[must_use]
pub fn cost_param_loop() -> Fixture {
    let mut b = KernelBuilder::new("cost_param_loop");
    let n = b.param(1);
    let acc = b.alloc();
    b.mov_to(acc, 0u32);
    let i = b.alloc();
    b.mov_to(i, 0u32);
    b.do_while(|b| {
        b.iadd_to(acc, acc, 5u32);
        b.iadd_to(i, i, 1u32);
        let p = b.setp(CmpOp::Lt, i, n);
        Guard::if_true(p)
    });
    writeback(&mut b, acc);
    let mut fx = finish("cost_param_loop", b);
    fx.launch.params.push(Value(6));
    fx
}

/// Nested loops: outer `[4, 4]`, inner `[2, 2]`, so the inner body's
/// visit count is the product 8. The inner counter is re-zeroed inside
/// the outer body — the induction recognizer must not confuse the reset
/// with the step.
#[must_use]
pub fn cost_nested_loop() -> Fixture {
    let mut b = KernelBuilder::new("cost_nested_loop");
    let acc = b.alloc();
    b.mov_to(acc, 0u32);
    let i = b.alloc();
    b.mov_to(i, 0u32);
    let j = b.alloc();
    b.do_while(|b| {
        b.mov_to(j, 0u32);
        b.do_while(|b| {
            b.iadd_to(acc, acc, 1u32);
            b.iadd_to(j, j, 1u32);
            let p = b.setp(CmpOp::Lt, j, 2u32);
            Guard::if_true(p)
        });
        b.iadd_to(i, i, 1u32);
        let p = b.setp(CmpOp::Lt, i, 4u32);
        Guard::if_true(p)
    });
    writeback(&mut b, acc);
    finish("cost_nested_loop", b)
}

/// Geometric induction: the counter starts at 1 and doubles each
/// iteration (`i += i`), continuing while `i < 16` — the FW butterfly
/// shape. An affine-only solver calls this unbounded; the geometric
/// recognizer must pin `[4, 4]`.
#[must_use]
pub fn cost_geometric_loop() -> Fixture {
    let mut b = KernelBuilder::new("cost_geometric_loop");
    let acc = b.alloc();
    b.mov_to(acc, 0u32);
    let i = b.alloc();
    b.mov_to(i, 1u32);
    b.do_while(|b| {
        b.iadd_to(acc, acc, i);
        b.iadd_to(i, i, i);
        let p = b.setp(CmpOp::Lt, i, 16u32);
        Guard::if_true(p)
    });
    writeback(&mut b, acc);
    finish("cost_geometric_loop", b)
}

/// The deliberately unboundable negative control: the loop bound is a
/// value loaded from memory, which no launch-time constant can resolve.
/// The estimator owes an `E201` and a one-sided bracket (sound minimum,
/// no maximum). Dynamically harmless: the buffer is zero-filled, so the
/// do-while exits after one visit.
#[must_use]
pub fn cost_unbounded_control() -> Fixture {
    let mut b = KernelBuilder::new("cost_unbounded_control");
    let out = b.param(0);
    let v = b.load(MemSpace::Global, out, 0);
    let i = b.alloc();
    b.mov_to(i, 0u32);
    b.do_while(|b| {
        b.iadd_to(i, i, 1u32);
        let p = b.setp(CmpOp::Lt, i, v);
        Guard::if_true(p)
    });
    writeback(&mut b, i);
    finish("cost_unbounded_control", b)
}

/// The cost-estimator fixtures, in documentation order.
#[must_use]
pub fn cost() -> Vec<Fixture> {
    vec![
        cost_straight_line(),
        cost_const_loop(),
        cost_param_loop(),
        cost_nested_loop(),
        cost_geometric_loop(),
        cost_unbounded_control(),
    ]
}

/// The translation-validation fixtures, in documentation order.
#[must_use]
pub fn symex() -> Vec<Fixture> {
    vec![
        symex_forged_dr(),
        symex_lane_dr(),
        symex_opaque_escape(),
        symex_opaque_control(),
        symex_forged_uniform_branch(),
        symex_uniform_branch(),
        symex_loop_reduction(),
        symex_warp_trip_control(),
        symex_uniform_base(),
        symex_divergent_write_control(),
    ]
}
