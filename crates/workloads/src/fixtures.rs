//! Deliberately racy fixture kernels for the shared-memory race
//! detector, plus a clean control.
//!
//! These are *not* part of the paper's Table 1 catalog: each one models a
//! bug class the verifier must catch (or, for the control, must not flag).
//!
//! | Fixture | Static verdict | Dynamic verdict |
//! |---|---|---|
//! | [`racy_missing_barrier`] | `V301` | `V303` |
//! | [`racy_same_word`] | `V301` | `V303` |
//! | [`racy_nonaffine`] | `V302` only | `V303` |
//! | [`clean_two_phase`] | clean | clean |

use gpu_sim::GlobalMemory;
use simt_compiler::{compile, CompiledKernel};
use simt_isa::{Dim3, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

/// One race-detector fixture: a compiled kernel with its launch and
/// initial memory, ready for `simt_verify::verify_full`.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// Stable fixture name (also the kernel name).
    pub name: &'static str,
    /// The compiled kernel.
    pub ck: CompiledKernel,
    /// Single-TB launch with an output buffer as parameter 0.
    pub launch: LaunchConfig,
    /// Memory holding the output buffer.
    pub memory: GlobalMemory,
}

const THREADS: u32 = 64;

fn finish(name: &'static str, b: KernelBuilder) -> Fixture {
    let ck = compile(b.finish());
    let mut memory = GlobalMemory::new();
    let out = memory.alloc(u64::from(THREADS) * 4);
    let launch = LaunchConfig::new(1u32, Dim3::one_d(THREADS)).with_params(vec![Value(out as u32)]);
    Fixture { name, ck, launch, memory }
}

/// Stores the result of loading shared word 0 out to global memory;
/// keeps every fixture's loaded value live.
fn writeback(b: &mut KernelBuilder, value: simt_isa::Reg) {
    let t = b.special(SpecialReg::TidX);
    let out = b.param(0);
    let off = b.shl_imm(t, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, value, 0);
}

/// Classic missing `__syncthreads()`: thread `t` writes shared word `t`,
/// then every thread reads word 0 with no barrier in between. Thread 0's
/// write races every other thread's read.
#[must_use]
pub fn racy_missing_barrier() -> Fixture {
    let mut b = KernelBuilder::new("racy_missing_barrier");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(THREADS * 4);
    let off = b.shl_imm(t, 2);
    let waddr = b.iadd(off, smem);
    b.store(MemSpace::Shared, waddr, t, 0);
    let v = b.load(MemSpace::Shared, smem, 0);
    writeback(&mut b, v);
    finish("racy_missing_barrier", b)
}

/// Unsynchronized reduction bug: every thread stores its tid to shared
/// word 0 in the same epoch — a write/write race whose surviving value is
/// interleaving-dependent.
#[must_use]
pub fn racy_same_word() -> Fixture {
    let mut b = KernelBuilder::new("racy_same_word");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(16);
    b.store(MemSpace::Shared, smem, t, 0);
    b.barrier();
    let v = b.load(MemSpace::Shared, smem, 0);
    writeback(&mut b, v);
    finish("racy_same_word", b)
}

/// Racy histogram with a non-affine bucket index: the address `tid.x & 1`
/// defeats the static affine classifier (a `V302` escalation, not a
/// proof), while the dynamic sanitizer pinpoints the collision between
/// threads that share a bucket.
#[must_use]
pub fn racy_nonaffine() -> Fixture {
    let mut b = KernelBuilder::new("racy_nonaffine");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(16);
    let bucket = b.and(t, 1u32);
    let off = b.shl_imm(bucket, 2);
    let waddr = b.iadd(off, smem);
    b.store(MemSpace::Shared, waddr, t, 0);
    b.barrier();
    let v = b.load(MemSpace::Shared, smem, 0);
    writeback(&mut b, v);
    finish("racy_nonaffine", b)
}

/// Correct two-phase exchange (the control): thread `t` writes word `t`,
/// a barrier closes the epoch, then thread `t` reads the mirrored word
/// `63-t`. Both detectors must stay silent.
#[must_use]
pub fn clean_two_phase() -> Fixture {
    let mut b = KernelBuilder::new("clean_two_phase");
    let t = b.special(SpecialReg::TidX);
    let smem = b.alloc_shared(THREADS * 4);
    let off = b.shl_imm(t, 2);
    let waddr = b.iadd(off, smem);
    b.store(MemSpace::Shared, waddr, t, 0);
    b.barrier();
    let mirror = b.isub(4 * (THREADS - 1), off);
    let raddr = b.iadd(mirror, smem);
    let v = b.load(MemSpace::Shared, raddr, 0);
    writeback(&mut b, v);
    finish("clean_two_phase", b)
}

/// The three racy fixtures, in documentation order.
#[must_use]
pub fn racy() -> Vec<Fixture> {
    vec![racy_missing_barrier(), racy_same_word(), racy_nonaffine()]
}
