//! The five 1D-threadblock benchmarks of Table 1: BIN, PT, FW, SR1, LIB.
//!
//! Each function builds the kernel in the virtual ISA, prepares inputs,
//! and installs a CPU reference validator that mirrors the kernel's
//! arithmetic (same operation order, `f32::mul_add` where the kernel uses
//! `ffma`), so outputs match exactly or to float tolerance.

use crate::common::{compare_f32, compare_u32, random_f32s, random_u32s, Scale, Workload};
use gpu_sim::GlobalMemory;
use simt_compiler::compile;
use simt_isa::{CmpOp, Dim3, Guard, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

/// `binomialOptions` (CUDA SDK): one option per threadblock, backward
/// induction over a recombining tree kept in shared memory. TB (256,1).
#[must_use]
pub fn binomial_options(scale: Scale) -> Workload {
    let (num_options, steps) = match scale {
        Scale::Test => (2u32, 8u32),
        Scale::Eval => (24u32, 48u32),
    };
    const NODES: u32 = 256;

    let mut b = KernelBuilder::new("binomial_options");
    let tx = b.special(SpecialReg::TidX);
    let cta = b.special(SpecialReg::CtaidX);
    let smem = b.alloc_shared((NODES + 1) * 4);
    let s0 = b.param(0);
    let ds = b.param(1);
    let xk = b.param(2);
    let pu = b.param(3);
    let pd = b.param(4);
    let out = b.param(5);
    let dsb = b.param(6);
    // Per-block spot: s = s0 + ctaid * dsb.
    let ctaf = b.i2f(cta);
    let s = b.ffma(ctaf, dsb, s0);
    // Payoff at node tx: max(s + tx*ds - xk, 0).
    let txf = b.i2f(tx);
    let gross = b.ffma(txf, ds, s);
    let pay = b.fsub(gross, xk);
    let zero = b.movf(0.0);
    let v0 = b.fmax(pay, zero);
    let addr = b.shl_imm(tx, 2);
    b.store(MemSpace::Shared, addr, v0, smem as i32);
    // Backward induction: v[t] = pu*v[t+1] + pd*v[t].
    let i = b.mov(0u32);
    let p = b.alloc_pred();
    b.do_while(|b| {
        b.barrier();
        let up = b.load(MemSpace::Shared, addr, smem as i32 + 4);
        let dn = b.load(MemSpace::Shared, addr, smem as i32);
        let hi = b.fmul(pu, up);
        let nv = b.ffma(pd, dn, hi);
        b.barrier();
        b.store(MemSpace::Shared, addr, nv, smem as i32);
        b.iadd_to(i, i, 1u32);
        b.setp_to(p, CmpOp::Lt, i, steps);
        Guard::if_true(p)
    });
    // Thread 0 writes the root value.
    let q = b.setp(CmpOp::Eq, tx, 0u32);
    b.if_then(Guard::if_true(q), |b| {
        let root = b.load(MemSpace::Shared, 0u32, smem as i32);
        let oaddr = {
            let o = b.shl_imm(cta, 2);
            b.iadd(out, o)
        };
        b.store(MemSpace::Global, oaddr, root, 0);
    });
    let ck = compile(b.finish());

    let (s0v, dsv, xv, puv, pdv, dsbv) = (20.0f32, 0.35f32, 28.0f32, 0.52f32, 0.47f32, 1.75f32);
    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(u64::from(num_options) * 4);
    let launch = LaunchConfig::new(num_options, NODES).with_params(vec![
        Value::from_f32(s0v),
        Value::from_f32(dsv),
        Value::from_f32(xv),
        Value::from_f32(puv),
        Value::from_f32(pdv),
        Value((out_addr) as u32),
        Value::from_f32(dsbv),
    ]);

    // CPU reference.
    let mut expected = Vec::with_capacity(num_options as usize);
    for opt in 0..num_options {
        let s = (opt as f32).mul_add(dsbv, s0v);
        let mut v: Vec<f32> =
            (0..=NODES).map(|t| ((t as f32).mul_add(dsv, s) - xv).max(0.0)).collect();
        for _ in 0..steps {
            let old = v.clone();
            for t in 0..NODES as usize {
                v[t] = pdv.mul_add(old[t], puv * old[t + 1]);
            }
        }
        expected.push(v[0]);
    }
    Workload {
        name: "binomialOptions",
        abbr: "BIN",
        block: Dim3::one_d(NODES),
        is_2d: false,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(out_addr, expected.len()), &expected, 1e-4)
        }),
    }
}

/// `pathfinder` (Rodinia): dynamic-programming grid traversal; each block
/// owns a 1024-wide column segment kept in shared memory. TB (1024,1).
#[must_use]
pub fn pathfinder(scale: Scale) -> Workload {
    let (blocks, rows) = match scale {
        Scale::Test => (1u32, 4u32),
        Scale::Eval => (4u32, 24u32),
    };
    const COLS: u32 = 1024;
    const BIG: u32 = 0x3fff_ffff;

    let mut b = KernelBuilder::new("pathfinder");
    let tx = b.special(SpecialReg::TidX);
    let cta = b.special(SpecialReg::CtaidX);
    let smem = b.alloc_shared(COLS * 4);
    let wall = b.param(0);
    let dist = b.param(1);
    let total_cols = b.param(2);
    // Global column index and initial distance row.
    let col = b.imad(cta, COLS, tx);
    let coff = b.shl_imm(col, 2);
    let daddr = b.iadd(dist, coff);
    let d0 = b.load(MemSpace::Global, daddr, 0);
    let saddr = b.shl_imm(tx, 2);
    b.store(MemSpace::Shared, saddr, d0, smem as i32);
    // Row pointer walks the wall matrix row by row.
    let rowbase = b.mov(wall);
    let r = b.mov(0u32);
    let p = b.alloc_pred();
    let ql = b.alloc_pred();
    let qr = b.alloc_pred();
    b.do_while(|b| {
        b.barrier();
        let c = b.load(MemSpace::Shared, saddr, smem as i32);
        // left/right neighbours with BIG at segment boundaries.
        let l = b.mov(BIG);
        b.setp_to(ql, CmpOp::Gt, tx, 0u32);
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Shared),
                Some(l),
                None,
                vec![saddr.into()],
            )
            .with_offset(smem as i32 - 4)
            .with_guard(Guard::if_true(ql)),
        );
        let rt = b.mov(BIG);
        b.setp_to(qr, CmpOp::Lt, tx, COLS - 1);
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Shared),
                Some(rt),
                None,
                vec![saddr.into()],
            )
            .with_offset(smem as i32 + 4)
            .with_guard(Guard::if_true(qr)),
        );
        let m1 = b.imin(l, c);
        let m = b.imin(m1, rt);
        let waddr = b.iadd(rowbase, coff);
        let w = b.load(MemSpace::Global, waddr, 0);
        let nv = b.iadd(m, w);
        b.barrier();
        b.store(MemSpace::Shared, saddr, nv, smem as i32);
        // rowbase += total_cols * 4.
        let stride = b.shl_imm(total_cols, 2);
        b.iadd_to(rowbase, rowbase, stride);
        b.iadd_to(r, r, 1u32);
        b.setp_to(p, CmpOp::Lt, r, rows);
        Guard::if_true(p)
    });
    b.barrier();
    let fin = b.load(MemSpace::Shared, saddr, smem as i32);
    b.store(MemSpace::Global, daddr, fin, 0);
    let ck = compile(b.finish());

    let total = (blocks * COLS) as usize;
    let wall_vals = random_u32s(11, total * rows as usize, 0, 16);
    let dist0 = random_u32s(13, total, 0, 64);
    let mut mem = GlobalMemory::new();
    let wall_addr = mem.alloc(wall_vals.len() as u64 * 4);
    let dist_addr = mem.alloc(total as u64 * 4);
    mem.write_slice_u32(wall_addr, &wall_vals);
    mem.write_slice_u32(dist_addr, &dist0);
    let launch = LaunchConfig::new(blocks, COLS).with_params(vec![
        Value(wall_addr as u32),
        Value(dist_addr as u32),
        Value(blocks * COLS),
    ]);

    // CPU reference: per block segment with BIG boundaries (mirrors the
    // kernel's segment-local neighbourhood).
    let mut expected = dist0.clone();
    for blk in 0..blocks as usize {
        let base = blk * COLS as usize;
        let mut cur = expected[base..base + COLS as usize].to_vec();
        for row in 0..rows as usize {
            let mut next = vec![0u32; COLS as usize];
            for t in 0..COLS as usize {
                let l = if t > 0 { cur[t - 1] } else { BIG };
                let rr = if t + 1 < COLS as usize { cur[t + 1] } else { BIG };
                let m = (l as i32).min(cur[t] as i32).min(rr as i32) as u32;
                next[t] = m.wrapping_add(wall_vals[row * total + base + t]);
            }
            cur = next;
        }
        expected[base..base + COLS as usize].copy_from_slice(&cur);
    }
    Workload {
        name: "pathfinder",
        abbr: "PT",
        block: Dim3::one_d(COLS),
        is_2d: false,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_u32(&m.read_vec_u32(dist_addr, total), &expected)
        }),
    }
}

/// `fastWalshTransform` (CUDA SDK): in-place integer Walsh-Hadamard
/// butterfly over shared memory. TB (256,1).
#[must_use]
pub fn fast_walsh(scale: Scale) -> Workload {
    let blocks = match scale {
        Scale::Test => 2u32,
        Scale::Eval => 48u32,
    };
    const N: u32 = 256;

    let mut b = KernelBuilder::new("fast_walsh");
    let tx = b.special(SpecialReg::TidX);
    let cta = b.special(SpecialReg::CtaidX);
    let smem = b.alloc_shared(N * 4);
    let data = b.param(0);
    let gid = b.imad(cta, N, tx);
    let goff = b.shl_imm(gid, 2);
    let gaddr = b.iadd(data, goff);
    let v = b.load(MemSpace::Global, gaddr, 0);
    let soff = b.shl_imm(tx, 2);
    b.store(MemSpace::Shared, soff, v, smem as i32);
    let stride = b.mov(1u32);
    let p = b.alloc_pred();
    let q = b.alloc_pred();
    b.do_while(|b| {
        b.barrier();
        b.setp_to(q, CmpOp::Lt, tx, N / 2);
        // i0 = 2*(tx - (tx & (stride-1))) + (tx & (stride-1))
        let sm1 = b.isub(stride, 1u32);
        let low = b.and(tx, sm1);
        let high = b.isub(tx, low);
        let twoh = b.shl_imm(high, 1);
        let i0 = b.iadd(twoh, low);
        let a0 = b.shl_imm(i0, 2);
        let soffs = b.shl_imm(stride, 2);
        let a1 = b.iadd(a0, soffs);
        let t0 = b.mov(0u32);
        let t1 = b.mov(0u32);
        // Only the lower half of the block drives butterflies; guard the
        // loads so upper threads do not touch out-of-range addresses.
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Shared),
                Some(t0),
                None,
                vec![a0.into()],
            )
            .with_offset(smem as i32)
            .with_guard(Guard::if_true(q)),
        );
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Shared),
                Some(t1),
                None,
                vec![a1.into()],
            )
            .with_offset(smem as i32)
            .with_guard(Guard::if_true(q)),
        );
        let sum = b.iadd(t0, t1);
        let dif = b.isub(t0, t1);
        b.barrier();
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::St(MemSpace::Shared),
                None,
                None,
                vec![a0.into(), sum.into()],
            )
            .with_offset(smem as i32)
            .with_guard(Guard::if_true(q)),
        );
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::St(MemSpace::Shared),
                None,
                None,
                vec![a1.into(), dif.into()],
            )
            .with_offset(smem as i32)
            .with_guard(Guard::if_true(q)),
        );
        b.iadd_to(stride, stride, stride);
        b.setp_to(p, CmpOp::Lt, stride, N);
        Guard::if_true(p)
    });
    b.barrier();
    let out = b.load(MemSpace::Shared, soff, smem as i32);
    b.store(MemSpace::Global, gaddr, out, 0);
    let ck = compile(b.finish());

    let n_total = (blocks * N) as usize;
    let input: Vec<u32> = random_u32s(7, n_total, 0, 1000);
    let mut mem = GlobalMemory::new();
    let data_addr = mem.alloc(n_total as u64 * 4);
    mem.write_slice_u32(data_addr, &input);
    let launch = LaunchConfig::new(blocks, N).with_params(vec![Value(data_addr as u32)]);

    // CPU reference.
    let mut expected = input;
    for blk in 0..blocks as usize {
        let seg = &mut expected[blk * N as usize..(blk + 1) * N as usize];
        let mut stride = 1usize;
        while stride < N as usize {
            let old = seg.to_vec();
            for t in 0..(N / 2) as usize {
                let low = t & (stride - 1);
                let i0 = 2 * (t - low) + low;
                let i1 = i0 + stride;
                seg[i0] = old[i0].wrapping_add(old[i1]);
                seg[i1] = old[i0].wrapping_sub(old[i1]);
            }
            stride *= 2;
        }
    }
    Workload {
        name: "fastWalshTransform",
        abbr: "FW",
        block: Dim3::one_d(N),
        is_2d: false,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_u32(&m.read_vec_u32(data_addr, n_total), &expected)
        }),
    }
}

/// `SRADV1` (Rodinia): speckle-reducing anisotropic diffusion, one thread
/// per pixel on a flattened image. TB (512,1).
#[must_use]
pub fn srad_v1(scale: Scale) -> Workload {
    let (w_log2, h) = match scale {
        Scale::Test => (6u32, 8u32),  // 64 x 8
        Scale::Eval => (7u32, 96u32), // 128 x 96
    };
    let w = 1u32 << w_log2;
    let n = w * h;
    let blocks = n / 512;
    assert!(blocks >= 1);

    let mut b = KernelBuilder::new("srad_v1");
    let tx = b.special(SpecialReg::TidX);
    let cta = b.special(SpecialReg::CtaidX);
    let jin = b.param(0);
    let jout = b.param(1);
    let lambda = b.param(2);
    let gid = b.imad(cta, 512u32, tx);
    let row = b.shr(gid, w_log2);
    let col = b.and(gid, w - 1);
    let goff = b.shl_imm(gid, 2);
    let jaddr = b.iadd(jin, goff);
    let jc = b.load(MemSpace::Global, jaddr, 0);
    // Neighbours, clamped to the centre at the borders.
    let qn = b.setp(CmpOp::Gt, row, 0u32);
    let qs = b.setp(CmpOp::Lt, row, h - 1);
    let qw = b.setp(CmpOp::Gt, col, 0u32);
    let qe = b.setp(CmpOp::Lt, col, w - 1);
    let jn = b.mov(jc);
    let js = b.mov(jc);
    let jw = b.mov(jc);
    let je = b.mov(jc);
    let stride_b = (w * 4) as i32;
    for (dst, pred, off) in [(jn, qn, -stride_b), (js, qs, stride_b), (jw, qw, -4), (je, qe, 4)] {
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Global),
                Some(dst),
                None,
                vec![jaddr.into()],
            )
            .with_offset(off)
            .with_guard(Guard::if_true(pred)),
        );
    }
    let dn = b.fsub(jn, jc);
    let ds = b.fsub(js, jc);
    let dw = b.fsub(jw, jc);
    let de = b.fsub(je, jc);
    let s1 = b.fadd(dn, ds);
    let s2 = b.fadd(dw, de);
    let lap = b.fadd(s1, s2);
    // Diffusion coefficient c = 1 / (1 + lap^2).
    let one = b.movf(1.0);
    let l2 = b.ffma(lap, lap, one);
    let c = b.frcp(l2);
    // out = jc + 0.25 * lambda * c * lap.
    let quarter = b.movf(0.25);
    let t1 = b.fmul(quarter, lambda);
    let t2 = b.fmul(t1, c);
    let res = b.ffma(t2, lap, jc);
    let oaddr = b.iadd(jout, goff);
    b.store(MemSpace::Global, oaddr, res, 0);
    let ck = compile(b.finish());

    let lam = 0.5f32;
    let img = random_f32s(17, n as usize, 0.1, 4.0);
    let mut mem = GlobalMemory::new();
    let jin_addr = mem.alloc(u64::from(n) * 4);
    let jout_addr = mem.alloc(u64::from(n) * 4);
    mem.write_slice_f32(jin_addr, &img);
    let launch = LaunchConfig::new(blocks, 512u32).with_params(vec![
        Value(jin_addr as u32),
        Value(jout_addr as u32),
        Value::from_f32(lam),
    ]);

    let mut expected = vec![0f32; n as usize];
    for gid in 0..n as usize {
        let (row, col) = (gid / w as usize, gid % w as usize);
        let jc = img[gid];
        let jn = if row > 0 { img[gid - w as usize] } else { jc };
        let js = if row < (h - 1) as usize { img[gid + w as usize] } else { jc };
        let jw = if col > 0 { img[gid - 1] } else { jc };
        let je = if col < (w - 1) as usize { img[gid + 1] } else { jc };
        let lap = ((jn - jc) + (js - jc)) + ((jw - jc) + (je - jc));
        let c = 1.0 / lap.mul_add(lap, 1.0);
        expected[gid] = (0.25 * lam * c).mul_add(lap, jc);
    }
    Workload {
        name: "SRADV1",
        abbr: "SR1",
        block: Dim3::one_d(512),
        is_2d: false,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(jout_addr, expected.len()), &expected, 1e-4)
        }),
    }
}

/// `LIB` (GPGPU-sim distribution): LIBOR Monte-Carlo path evaluation. Each
/// thread evolves one path; the per-step rate/volatility tables are loaded
/// from uniform global addresses — heavily uniform-redundant, with no
/// `__syncthreads()` (the paper highlights both properties). TB (256,1).
#[must_use]
pub fn lib_mc(scale: Scale) -> Workload {
    let (blocks, steps) = match scale {
        Scale::Test => (1u32, 6u32),
        Scale::Eval => (8u32, 40u32),
    };
    const T: u32 = 256;

    let mut b = KernelBuilder::new("lib_mc");
    let tx = b.special(SpecialReg::TidX);
    let cta = b.special(SpecialReg::CtaidX);
    let rates = b.param(0);
    let vols = b.param(1);
    let outp = b.param(2);
    let strike = b.param(3);
    let gid = b.imad(cta, T, tx);
    // Per-thread LCG seed.
    let seed = b.imad(gid, 1_103_515_245u32, 12_345u32);
    let l = b.movf(1.0);
    let payoff = b.movf(0.0);
    let i = b.mov(0u32);
    let tbl = b.mov(0u32); // table byte offset, uniform
    let p = b.alloc_pred();
    b.do_while(|b| {
        // Uniform table loads (same address in every thread) and the
        // uniform per-step drift arithmetic of the LIBOR forward-rate
        // update — the bulk of LIB's work, as in the paper.
        let raddr = b.iadd(rates, tbl);
        let rate = b.load(MemSpace::Global, raddr, 0);
        let vaddr = b.iadd(vols, tbl);
        let vol = b.load(MemSpace::Global, vaddr, 0);
        let delta = b.movf(0.25);
        let con1 = b.fmul(delta, rate);
        let one = b.movf(1.0);
        let den = b.fadd(one, con1);
        let dinv = b.frcp(den);
        let drift0 = b.fmul(con1, dinv);
        let vsq = b.fmul(vol, vol);
        let half = b.movf(0.5);
        let vhalf = b.fmul(half, vsq);
        let drift = b.fsub(drift0, vhalf);
        let sqd = b.movf(0.5); // sqrt(delta)
        let volsd = b.fmul(vol, sqd);
        // Thread-local pseudo-random step in [-0.5, 0.5).
        b.imad_to(seed, seed, 1_103_515_245u32, 12_345u32);
        let bits = b.shr_imm(seed, 16);
        let masked = b.and(bits, 0xFFFFu32);
        let zf = b.i2f(masked);
        let scale_c = b.movf(1.0 / 65536.0);
        let u01 = b.fmul(zf, scale_c);
        let halfc = b.movf(-0.5);
        let z = b.fadd(u01, halfc);
        // L *= (1 + drift + vol*sqrt(delta)*z)
        let growth0 = b.fadd(one, drift);
        let growth = b.ffma(volsd, z, growth0);
        let nl = b.fmul(l, growth);
        b.mov_to(l, nl);
        // payoff += max(L - strike, 0)
        let diff = b.fsub(l, strike);
        let zero = b.movf(0.0);
        let gain = b.fmax(diff, zero);
        b.fadd_to(payoff, payoff, gain);
        b.iadd_to(tbl, tbl, 4u32);
        b.iadd_to(i, i, 1u32);
        b.setp_to(p, CmpOp::Lt, i, steps);
        Guard::if_true(p)
    });
    let ooff = b.shl_imm(gid, 2);
    let oaddr = b.iadd(outp, ooff);
    b.store(MemSpace::Global, oaddr, payoff, 0);
    let ck = compile(b.finish());

    let n = (blocks * T) as usize;
    let rate_tbl = random_f32s(23, steps as usize, 0.001, 0.02);
    let vol_tbl = random_f32s(29, steps as usize, 0.05, 0.2);
    let strike_v = 1.05f32;
    let mut mem = GlobalMemory::new();
    let rates_addr = mem.alloc(u64::from(steps) * 4);
    let vols_addr = mem.alloc(u64::from(steps) * 4);
    let out_addr = mem.alloc(n as u64 * 4);
    mem.write_slice_f32(rates_addr, &rate_tbl);
    mem.write_slice_f32(vols_addr, &vol_tbl);
    let launch = LaunchConfig::new(blocks, T).with_params(vec![
        Value(rates_addr as u32),
        Value(vols_addr as u32),
        Value(out_addr as u32),
        Value::from_f32(strike_v),
    ]);

    let mut expected = vec![0f32; n];
    for (gid, e) in expected.iter_mut().enumerate() {
        let mut seed = (gid as u32).wrapping_mul(1_103_515_245).wrapping_add(12_345);
        let mut l = 1.0f32;
        let mut payoff = 0.0f32;
        for s in 0..steps as usize {
            seed = seed.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            let masked = (seed >> 16) & 0xFFFF;
            let z = (masked as f32) * (1.0 / 65536.0) + -0.5;
            let con1 = 0.25 * rate_tbl[s];
            let drift = con1 * (1.0 / (1.0 + con1)) - 0.5 * (vol_tbl[s] * vol_tbl[s]);
            let growth = (vol_tbl[s] * 0.5).mul_add(z, 1.0 + drift);
            l *= growth;
            payoff += (l - strike_v).max(0.0);
        }
        *e = payoff;
    }
    Workload {
        name: "LIB",
        abbr: "LIB",
        block: Dim3::one_d(T),
        is_2d: false,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(out_addr, expected.len()), &expected, 1e-3)
        }),
    }
}
