//! The paper's 3D-threadblock extension (Section 2): "These observations
//! also apply to 3D TBs, where both the tid.x and tid.y registers can be
//! conditionally redundant." The paper limits its evaluation to `tid.x`;
//! this module exercises the full extension, which the compiler implements
//! behind [`AnalysisOptions::analyze_tid_y`].
//!
//! With an (8,4,4) threadblock and 32-lane warps, each warp covers one
//! whole (x, y) plane: both `tid.x` and `tid.y` repeat identically in
//! every warp, so coefficient loads indexed by either become skippable.

use crate::common::{compare_f32, random_f32s, Scale, Workload};
use gpu_sim::GlobalMemory;
use simt_compiler::{compile_with_options, AnalysisOptions};
use simt_isa::{Dim3, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

/// A 3D volume blend: `out[v] = in[v] + alpha * row[tid.y] * col[tid.x]`,
/// with the per-axis coefficient tables loaded through `tid.x`/`tid.y`
/// derived addresses. TB (8,4,4).
#[must_use]
pub fn volume_blend(scale: Scale, analyze_tid_y: bool) -> Workload {
    let (bx, by, bz) = (8u32, 4u32, 4u32);
    let grid = match scale {
        Scale::Test => Dim3::three_d(2, 2, 1),
        Scale::Eval => Dim3::three_d(4, 4, 2),
    };
    let (wx, wy, wz) = (grid.x * bx, grid.y * by, grid.z * bz);

    let mut b = KernelBuilder::new("volume_blend");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let tz = b.special(SpecialReg::TidZ);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let cz = b.special(SpecialReg::CtaidZ);
    let src = b.param(0);
    let dst = b.param(1);
    let rows = b.param(2);
    let cols = b.param(3);
    let alpha = b.param(4);
    // Coefficient loads: col[tid.x] is conditionally redundant on the
    // x-check; row[tid.y] needs the 3D (x*y) check as well.
    let coff = b.shl_imm(tx, 2);
    let caddr = b.iadd(cols, coff);
    let cv = b.load(MemSpace::Global, caddr, 0);
    let roff = b.shl_imm(ty, 2);
    let raddr = b.iadd(rows, roff);
    let rv = b.load(MemSpace::Global, raddr, 0);
    let wgt0 = b.fmul(rv, cv);
    let wgt = b.fmul(alpha, wgt0);
    // Global voxel index (true vector work).
    let gx = b.imad(cx, bx, tx);
    let gy = b.imad(cy, by, ty);
    let gz = b.imad(cz, bz, tz);
    let l0 = b.imad(gz, wy, gy);
    let lin = b.imad(l0, wx, gx);
    let off = b.shl_imm(lin, 2);
    let saddr = b.iadd(src, off);
    let v = b.load(MemSpace::Global, saddr, 0);
    let res = b.fadd(v, wgt);
    let oaddr = b.iadd(dst, off);
    b.store(MemSpace::Global, oaddr, res, 0);
    let opts = AnalysisOptions { analyze_tid_y, ..AnalysisOptions::default() };
    let ck = compile_with_options(b.finish(), opts);

    let n = (wx * wy * wz) as usize;
    let vol = random_f32s(101, n, 0.0, 1.0);
    let row_c = random_f32s(103, by as usize, -1.0, 1.0);
    let col_c = random_f32s(107, bx as usize, -1.0, 1.0);
    let alpha_v = 0.75f32;
    let mut mem = GlobalMemory::new();
    let s_addr = mem.alloc(n as u64 * 4);
    let d_addr = mem.alloc(n as u64 * 4);
    let r_addr = mem.alloc(u64::from(by) * 4);
    let c_addr = mem.alloc(u64::from(bx) * 4);
    mem.write_slice_f32(s_addr, &vol);
    mem.write_slice_f32(r_addr, &row_c);
    mem.write_slice_f32(c_addr, &col_c);
    let launch = LaunchConfig::new(grid, Dim3::three_d(bx, by, bz)).with_params(vec![
        Value(s_addr as u32),
        Value(d_addr as u32),
        Value(r_addr as u32),
        Value(c_addr as u32),
        Value::from_f32(alpha_v),
    ]);

    let mut expected = vec![0f32; n];
    for z in 0..wz as usize {
        for y in 0..wy as usize {
            for x in 0..wx as usize {
                let idx = (z * wy as usize + y) * wx as usize + x;
                let wgt = alpha_v * (row_c[y % by as usize] * col_c[x % bx as usize]);
                expected[idx] = vol[idx] + wgt;
            }
        }
    }
    Workload {
        name: "VolumeBlend3D",
        abbr: "VOL3D",
        block: Dim3::three_d(bx, by, bz),
        is_2d: true, // multi-dimensional
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(d_addr, expected.len()), &expected, 1e-4)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, Technique};
    use simt_compiler::LaunchPlan;

    #[test]
    fn tid_y_extension_widens_the_skippable_set() {
        let off = volume_blend(Scale::Test, false);
        let on = volume_blend(Scale::Test, true);
        let plan_off = LaunchPlan::new(&off.ck, &off.launch);
        let plan_on = LaunchPlan::new(&on.ck, &on.launch);
        assert!(plan_on.promoted_x, "x=8 is a power of two <= 32");
        assert!(plan_on.promoted_y, "x*y=32 fits one warp");
        assert!(
            plan_on.num_skippable() > plan_off.num_skippable(),
            "tid.y analysis must add skippable instructions: {} vs {}",
            plan_on.num_skippable(),
            plan_off.num_skippable()
        );
    }

    #[test]
    fn three_d_blocks_validate_under_darsie_with_and_without_extension() {
        for analyze in [false, true] {
            let w = volume_blend(Scale::Test, analyze);
            let base = w.run(&GpuConfig::test_small(), Technique::Base);
            let dars = w.run(&GpuConfig::test_small(), Technique::darsie());
            assert_eq!(
                base.memory.fingerprint(),
                dars.memory.fingerprint(),
                "analyze_tid_y={analyze}"
            );
            assert!(dars.stats.instrs_skipped.total() > 0);
        }
    }

    #[test]
    fn extension_skips_strictly_more_at_runtime() {
        // This kernel is a straight-line chain of ~20 skippable PCs; with
        // the default 8-entry table warps spread out and evictions mask
        // the difference, so size the table for the chain (the sweep is
        // itself a DESIGN.md ablation).
        let cfg = GpuConfig::test_small();
        let tech = Technique::Darsie(darsie::DarsieConfig {
            skip_entries_per_tb: 32,
            rename_regs_per_tb: 64,
            ..darsie::DarsieConfig::default()
        });
        let off =
            volume_blend(Scale::Test, false).run(&cfg, tech.clone()).stats.instrs_skipped.total();
        let on = volume_blend(Scale::Test, true).run(&cfg, tech).stats.instrs_skipped.total();
        assert!(on > off, "tid.y extension skipped {on} vs {off}");
    }

    #[test]
    fn narrow_warps_demote_the_y_check() {
        // With a (16,4,1) block the x*y product exceeds the warp size, so
        // the y promotion must fail even with the analysis on.
        let w = volume_blend(Scale::Test, true);
        let mut launch = w.launch.clone();
        launch.block = Dim3::three_d(16, 4, 2);
        let plan = LaunchPlan::new(&w.ck, &launch);
        assert!(plan.promoted_x);
        assert!(!plan.promoted_y, "x*y = 64 exceeds the warp");
    }
}
