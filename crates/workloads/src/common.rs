//! Shared workload plumbing: the [`Workload`] record, scaling and
//! deterministic input generation.

use gpu_sim::{Gpu, GpuConfig, SimResult, Technique};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simt_compiler::CompiledKernel;
use simt_isa::{Dim3, LaunchConfig};

/// Problem-size scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit tests (runs in milliseconds).
    Test,
    /// Evaluation inputs for the figure harness (seconds per run).
    Eval,
}

/// A CPU-reference validator: checks final global memory against the
/// reference implementation.
pub type Check = Box<dyn Fn(&gpu_sim::GlobalMemory) -> Result<(), String> + Send + Sync>;

/// A ready-to-run benchmark: compiled kernel, launch, initial memory and a
/// CPU-reference validator.
pub struct Workload {
    /// Full name (Table 1).
    pub name: &'static str,
    /// Abbreviation used in the figures.
    pub abbr: &'static str,
    /// Threadblock shape (Table 1).
    pub block: Dim3,
    /// True for the 2D-TB benchmarks.
    pub is_2d: bool,
    /// The compiled kernel.
    pub ck: CompiledKernel,
    /// Launch geometry and parameters.
    pub launch: LaunchConfig,
    /// Initial global memory (inputs written, outputs zeroed).
    pub memory: gpu_sim::GlobalMemory,
    /// Validates outputs against the CPU reference.
    pub check: Check,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("abbr", &self.abbr)
            .field("block", &self.block)
            .field("grid", &self.launch.grid)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Runs the workload under `technique` on `cfg`, validating the
    /// outputs against the CPU reference.
    ///
    /// # Panics
    ///
    /// Panics if the outputs do not match the reference.
    #[must_use]
    pub fn run(&self, cfg: &GpuConfig, technique: Technique) -> SimResult {
        let gpu = Gpu::new(cfg.clone(), technique.clone());
        let result = gpu.launch(&self.ck, &self.launch, self.memory.clone());
        if let Err(e) = (self.check)(&result.memory) {
            panic!("{} under {}: validation failed: {e}", self.abbr, technique.label());
        }
        result
    }

    /// Runs without validating (for ablations that perturb timing only —
    /// validation is unaffected by timing, so this is just a fast path).
    #[must_use]
    pub fn run_unchecked(&self, cfg: &GpuConfig, technique: Technique) -> SimResult {
        let gpu = Gpu::new(cfg.clone(), technique);
        gpu.launch(&self.ck, &self.launch, self.memory.clone())
    }
}

/// Deterministic RNG for inputs (fixed seed per workload).
#[must_use]
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// `n` deterministic floats in `[lo, hi)`.
#[must_use]
pub fn random_f32s(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// `n` deterministic integers in `[lo, hi)`.
#[must_use]
pub fn random_u32s(seed: u64, n: usize, lo: u32, hi: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// Asserts two float slices match to a tolerance, reporting the first
/// mismatch.
pub fn compare_f32(got: &[f32], want: &[f32], tol: f32) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        let rel = err / w.abs().max(1.0);
        if rel > tol && err > tol {
            return Err(format!("index {i}: got {g}, want {w} (err {err})"));
        }
    }
    Ok(())
}

/// Asserts two integer slices match.
pub fn compare_u32(got: &[u32], want: &[u32]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length mismatch: {} vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(format!("index {i}: got {g}, want {w}"));
        }
    }
    Ok(())
}
