//! 2D-threadblock benchmarks, part 1: IMNLM, BP, DCT8x8, FWS.

use crate::common::{compare_f32, compare_u32, random_f32s, random_u32s, Scale, Workload};
use gpu_sim::GlobalMemory;
use simt_compiler::compile;
use simt_isa::{CmpOp, Dim3, Guard, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

/// `ImageDenoisingNLM` (CUDA SDK): non-local-means style 3x3 weighted
/// average with exponential weights. TB (16,16).
#[must_use]
pub fn image_denoising_nlm(scale: Scale) -> Workload {
    let (log_w, h) = match scale {
        Scale::Test => (5u32, 16u32), // 32 x 16
        Scale::Eval => (6u32, 64u32), // 64 x 64
    };
    let w = 1u32 << log_w;

    let mut b = KernelBuilder::new("imnlm");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let src = b.param(0);
    let dst = b.param(1);
    let gx = b.imad(cx, 16u32, tx);
    let gy = b.imad(cy, 16u32, ty);
    let center_lin = b.shl(gy, log_w);
    let center_idx = b.iadd(center_lin, gx);
    let center_off = b.shl_imm(center_idx, 2);
    let caddr = b.iadd(src, center_off);
    let jc = b.load(MemSpace::Global, caddr, 0);
    let acc = b.movf(0.0);
    let norm = b.movf(0.0);
    let wmax = b.mov(w - 1);
    let hmax = b.mov(h - 1);
    b.for_count(3u32, |b, dy| {
        b.for_count(3u32, |b, dx| {
            // Clamped neighbour coordinates.
            let oy0 = b.iadd(gy, dy);
            let oy1 = b.isub(oy0, 1u32);
            let oy2 = b.imax(oy1, 0u32);
            let oy = b.imin(oy2, hmax);
            let ox0 = b.iadd(gx, dx);
            let ox1 = b.isub(ox0, 1u32);
            let ox2 = b.imax(ox1, 0u32);
            let ox = b.imin(ox2, wmax);
            let nlin = b.shl(oy, log_w);
            let nidx = b.iadd(nlin, ox);
            let noff = b.shl_imm(nidx, 2);
            let naddr = b.iadd(src, noff);
            let jn = b.load(MemSpace::Global, naddr, 0);
            // weight = 2^(-(jn-jc)^2)
            let d = b.fsub(jn, jc);
            let d2 = b.fmul(d, d);
            let neg = b.movf(-1.0);
            let e = b.fmul(d2, neg);
            let wgt = b.fexp2(e);
            b.ffma_to(acc, wgt, jn, acc);
            b.fadd_to(norm, norm, wgt);
        });
    });
    let inv = b.frcp(norm);
    let res = b.fmul(acc, inv);
    let oaddr = b.iadd(dst, center_off);
    b.store(MemSpace::Global, oaddr, res, 0);
    let ck = compile(b.finish());

    let n = (w * h) as usize;
    let img = random_f32s(31, n, 0.0, 1.0);
    let mut mem = GlobalMemory::new();
    let src_addr = mem.alloc(n as u64 * 4);
    let dst_addr = mem.alloc(n as u64 * 4);
    mem.write_slice_f32(src_addr, &img);
    let launch = LaunchConfig::new(Dim3::two_d(w / 16, h / 16), Dim3::two_d(16, 16))
        .with_params(vec![Value(src_addr as u32), Value(dst_addr as u32)]);

    let mut expected = vec![0f32; n];
    for y in 0..h as usize {
        for x in 0..w as usize {
            let jc = img[y * w as usize + x];
            let mut acc = 0f32;
            let mut norm = 0f32;
            for dy in 0..3i64 {
                for dx in 0..3i64 {
                    let oy = (y as i64 + dy - 1).clamp(0, i64::from(h) - 1) as usize;
                    let ox = (x as i64 + dx - 1).clamp(0, i64::from(w) - 1) as usize;
                    let jn = img[oy * w as usize + ox];
                    let d = jn - jc;
                    let wgt = (-d * d).exp2();
                    acc = wgt.mul_add(jn, acc);
                    norm += wgt;
                }
            }
            expected[y * w as usize + x] = acc * (1.0 / norm);
        }
    }
    Workload {
        name: "ImageDenoisingNLM",
        abbr: "IMNLM",
        block: Dim3::two_d(16, 16),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(dst_addr, expected.len()), &expected, 2e-3)
        }),
    }
}

/// `Backprop` layer-forward (Rodinia): weight x input products reduced
/// along the input dimension with a shared-memory tree. TB (16,16).
#[must_use]
pub fn backprop(scale: Scale) -> Workload {
    let (in_nodes, hid_nodes) = match scale {
        Scale::Test => (16u32, 16u32),
        Scale::Eval => (128u32, 64u32),
    };

    let mut b = KernelBuilder::new("backprop");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let input_p = b.param(0);
    let weights_p = b.param(1);
    let partial_p = b.param(2);
    let in_total = b.param(3);
    let smem_in = b.alloc_shared(16 * 4);
    let smem_mat = b.alloc_shared(16 * 16 * 4);
    let i_idx = b.imad(cx, 16u32, tx); // input node
    let j_idx = b.imad(cy, 16u32, ty); // hidden node
                                       // Row ty == 0 loads the input slice into shared memory.
    let q0 = b.setp(CmpOp::Eq, ty, 0u32);
    let ioff = b.shl_imm(i_idx, 2);
    let iaddr = b.iadd(input_p, ioff);
    let soff = b.shl_imm(tx, 2);
    b.if_then(Guard::if_true(q0), |b| {
        let v = b.load(MemSpace::Global, iaddr, 0);
        b.store(MemSpace::Shared, soff, v, smem_in as i32);
    });
    b.barrier();
    // product = w[j][i] * input[i]
    let wlin = b.imad(j_idx, in_total, i_idx);
    let woff = b.shl_imm(wlin, 2);
    let waddr = b.iadd(weights_p, woff);
    let wv = b.load(MemSpace::Global, waddr, 0);
    let inv = b.load(MemSpace::Shared, soff, smem_in as i32);
    let prod = b.fmul(wv, inv);
    let mlin = b.imad(ty, 16u32, tx);
    let moff = b.shl_imm(mlin, 2);
    b.store(MemSpace::Shared, moff, prod, smem_mat as i32);
    // Tree reduction along tx.
    let qs = b.alloc_pred();
    for s in [8u32, 4, 2, 1] {
        b.barrier();
        b.setp_to(qs, CmpOp::Lt, tx, s);
        let partner = b.mov(0u32);
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Shared),
                Some(partner),
                None,
                vec![moff.into()],
            )
            .with_offset(smem_mat as i32 + (s * 4) as i32)
            .with_guard(Guard::if_true(qs)),
        );
        let mine = b.mov(0u32);
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Shared),
                Some(mine),
                None,
                vec![moff.into()],
            )
            .with_offset(smem_mat as i32)
            .with_guard(Guard::if_true(qs)),
        );
        let sum = b.fadd(mine, partner);
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::St(MemSpace::Shared),
                None,
                None,
                vec![moff.into(), sum.into()],
            )
            .with_offset(smem_mat as i32)
            .with_guard(Guard::if_true(qs)),
        );
    }
    b.barrier();
    // Thread tx == 0 writes the partial sum for (block-x, hidden j).
    let qw = b.setp(CmpOp::Eq, tx, 0u32);
    b.if_then(Guard::if_true(qw), |b| {
        let red = b.load(MemSpace::Shared, moff, smem_mat as i32);
        // partial[(cx * hid_nodes) + j]
        let plin = b.imad(cx, hid_nodes, j_idx);
        let poff = b.shl_imm(plin, 2);
        let paddr = b.iadd(partial_p, poff);
        b.store(MemSpace::Global, paddr, red, 0);
    });
    let ck = compile(b.finish());

    let input = random_f32s(41, in_nodes as usize, -1.0, 1.0);
    let weights = random_f32s(43, (in_nodes * hid_nodes) as usize, -0.5, 0.5);
    let xblocks = in_nodes / 16;
    let yblocks = hid_nodes / 16;
    let mut mem = GlobalMemory::new();
    let in_addr = mem.alloc(u64::from(in_nodes) * 4);
    let w_addr = mem.alloc(u64::from(in_nodes * hid_nodes) * 4);
    let p_addr = mem.alloc(u64::from(xblocks * hid_nodes) * 4);
    mem.write_slice_f32(in_addr, &input);
    mem.write_slice_f32(w_addr, &weights);
    let launch =
        LaunchConfig::new(Dim3::two_d(xblocks, yblocks), Dim3::two_d(16, 16)).with_params(vec![
            Value(in_addr as u32),
            Value(w_addr as u32),
            Value(p_addr as u32),
            Value(in_nodes),
        ]);

    // CPU reference mirrors the tree-reduction order.
    let mut expected = vec![0f32; (xblocks * hid_nodes) as usize];
    for bx in 0..xblocks as usize {
        for j in 0..hid_nodes as usize {
            let mut vals: Vec<f32> = (0..16)
                .map(|t| {
                    let i = bx * 16 + t;
                    weights[j * in_nodes as usize + i] * input[i]
                })
                .collect();
            let mut s = 8;
            while s >= 1 {
                for t in 0..s {
                    vals[t] += vals[t + s];
                }
                s /= 2;
            }
            expected[bx * hid_nodes as usize + j] = vals[0];
        }
    }
    Workload {
        name: "Backprop",
        abbr: "BP",
        block: Dim3::two_d(16, 16),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(p_addr, expected.len()), &expected, 1e-3)
        }),
    }
}

/// `DCT8x8` (CUDA SDK): separable 8x8 discrete cosine transform, one tile
/// per threadblock, cosine table in global memory. TB (8,8).
#[must_use]
pub fn dct8x8(scale: Scale) -> Workload {
    let tiles = match scale {
        Scale::Test => (2u32, 2u32),
        Scale::Eval => (12u32, 12u32),
    };
    let (tw, th) = tiles;
    let w = tw * 8;

    let mut b = KernelBuilder::new("dct8x8");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let src = b.param(0);
    let dst = b.param(1);
    let cosp = b.param(2);
    let smem_tile = b.alloc_shared(64 * 4);
    let smem_tmp = b.alloc_shared(64 * 4);
    // Load the tile.
    let gx = b.imad(cx, 8u32, tx);
    let gy = b.imad(cy, 8u32, ty);
    let glin = b.imad(gy, w, gx);
    let goff = b.shl_imm(glin, 2);
    let gaddr = b.iadd(src, goff);
    let v = b.load(MemSpace::Global, gaddr, 0);
    let slin = b.imad(ty, 8u32, tx);
    let soff = b.shl_imm(slin, 2);
    b.store(MemSpace::Shared, soff, v, smem_tile as i32);
    b.barrier();
    // Row pass: tmp[ty][tx] = sum_k tile[ty][k] * C[tx][k].
    let rowbase = b.shl_imm(ty, 5); // ty*8 elements * 4 bytes
    let cosrow = b.shl_imm(tx, 5);
    let acc = b.movf(0.0);
    b.for_count(8u32, |b, k| {
        let k4 = b.shl_imm(k, 2);
        let ta = b.iadd(rowbase, k4);
        let tv = b.load(MemSpace::Shared, ta, smem_tile as i32);
        let ca0 = b.iadd(cosrow, k4);
        let ca = b.iadd(cosp, ca0);
        let cv = b.load(MemSpace::Global, ca, 0);
        b.ffma_to(acc, tv, cv, acc);
    });
    b.store(MemSpace::Shared, soff, acc, smem_tmp as i32);
    b.barrier();
    // Column pass: out[ty][tx] = sum_k tmp[k][tx] * C[ty][k].
    let colbase = b.shl_imm(tx, 2);
    let cosrow2 = b.shl_imm(ty, 5);
    let acc2 = b.movf(0.0);
    b.for_count(8u32, |b, k| {
        let krow = b.shl_imm(k, 5);
        let ta0 = b.iadd(colbase, krow);
        let tv = b.load(MemSpace::Shared, ta0, smem_tmp as i32);
        let k4 = b.shl_imm(k, 2);
        let ca0 = b.iadd(cosrow2, k4);
        let ca = b.iadd(cosp, ca0);
        let cv = b.load(MemSpace::Global, ca, 0);
        b.ffma_to(acc2, tv, cv, acc2);
    });
    let oaddr = b.iadd(dst, goff);
    b.store(MemSpace::Global, oaddr, acc2, 0);
    let ck = compile(b.finish());

    // Cosine table C[u][k].
    let mut cos_tbl = vec![0f32; 64];
    for u in 0..8 {
        for k in 0..8 {
            let a = if u == 0 { (1.0f64 / 8.0).sqrt() } else { (2.0f64 / 8.0).sqrt() };
            cos_tbl[u * 8 + k] =
                (a * ((2 * k + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()) as f32;
        }
    }
    let n = (w * th * 8) as usize;
    let img = random_f32s(47, n, -128.0, 128.0);
    let mut mem = GlobalMemory::new();
    let src_addr = mem.alloc(n as u64 * 4);
    let dst_addr = mem.alloc(n as u64 * 4);
    let cos_addr = mem.alloc(64 * 4);
    mem.write_slice_f32(src_addr, &img);
    mem.write_slice_f32(cos_addr, &cos_tbl);
    let launch = LaunchConfig::new(Dim3::two_d(tw, th), Dim3::two_d(8, 8)).with_params(vec![
        Value(src_addr as u32),
        Value(dst_addr as u32),
        Value(cos_addr as u32),
    ]);

    let mut expected = vec![0f32; n];
    for tyb in 0..th as usize {
        for txb in 0..tw as usize {
            // Row pass.
            let mut tmp = [0f32; 64];
            for y in 0..8 {
                for u in 0..8 {
                    let mut acc = 0f32;
                    for k in 0..8 {
                        let pix = img[(tyb * 8 + y) * w as usize + txb * 8 + k];
                        acc = pix.mul_add(cos_tbl[u * 8 + k], acc);
                    }
                    tmp[y * 8 + u] = acc;
                }
            }
            // Column pass.
            for v in 0..8 {
                for x in 0..8 {
                    let mut acc = 0f32;
                    for k in 0..8 {
                        acc = tmp[k * 8 + x].mul_add(cos_tbl[v * 8 + k], acc);
                    }
                    expected[(tyb * 8 + v) * w as usize + txb * 8 + x] = acc;
                }
            }
        }
    }
    Workload {
        name: "DCT8x8",
        abbr: "DCT8x8",
        block: Dim3::two_d(8, 8),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(dst_addr, expected.len()), &expected, 1e-2)
        }),
    }
}

/// `Floyd-Warshall` (Pannotia): one relaxation step
/// `d[i][j] = min(d[i][j], d[i][k] + d[k][j])`. The `d[k][j]` row load is
/// conditionally redundant (address derives from `tid.x`), making this the
/// paper's example of a memory-bound 2D benchmark. TB (16,16).
#[must_use]
pub fn floyd_warshall(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 32u32,
        Scale::Eval => 192u32,
    };
    let k = n / 2; // relaxation pivot for this launch

    let mut b = KernelBuilder::new("floyd_warshall");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let din = b.param(0);
    let dout = b.param(1);
    let j = b.imad(cx, 16u32, tx);
    let i = b.imad(cy, 16u32, ty);
    // d[i][j]
    let ij = b.imad(i, n, j);
    let ijo = b.shl_imm(ij, 2);
    let ija = b.iadd(din, ijo);
    let dij = b.load(MemSpace::Global, ija, 0);
    // d[i][k]
    let ik = b.imad(i, n, k);
    let iko = b.shl_imm(ik, 2);
    let ika = b.iadd(din, iko);
    let dik = b.load(MemSpace::Global, ika, 0);
    // d[k][j] — the conditionally redundant row.
    let kreg = b.mov(k);
    let kj = b.imad(kreg, n, j);
    let kjo = b.shl_imm(kj, 2);
    let kja = b.iadd(din, kjo);
    let dkj = b.load(MemSpace::Global, kja, 0);
    let viak = b.iadd(dik, dkj);
    let best = b.imin(dij, viak);
    let oa = b.iadd(dout, ijo);
    b.store(MemSpace::Global, oa, best, 0);
    let ck = compile(b.finish());

    let total = (n * n) as usize;
    let d0 = random_u32s(53, total, 1, 1000);
    let mut mem = GlobalMemory::new();
    let din_addr = mem.alloc(total as u64 * 4);
    let dout_addr = mem.alloc(total as u64 * 4);
    mem.write_slice_u32(din_addr, &d0);
    let launch = LaunchConfig::new(Dim3::two_d(n / 16, n / 16), Dim3::two_d(16, 16))
        .with_params(vec![Value(din_addr as u32), Value(dout_addr as u32)]);

    let mut expected = vec![0u32; total];
    for i in 0..n as usize {
        for j in 0..n as usize {
            let dij = d0[i * n as usize + j] as i32;
            let dik = d0[i * n as usize + k as usize] as i32;
            let dkj = d0[k as usize * n as usize + j] as i32;
            expected[i * n as usize + j] = dij.min(dik.wrapping_add(dkj)) as u32;
        }
    }
    Workload {
        name: "Floyd-Warshall",
        abbr: "FWS",
        block: Dim3::two_d(16, 16),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_u32(&m.read_vec_u32(dout_addr, expected.len()), &expected)
        }),
    }
}
