//! 2D-threadblock benchmarks, part 2: HS, CP, CONVTEX, MM.

use crate::common::{compare_f32, random_f32s, Scale, Workload};
use gpu_sim::GlobalMemory;
use simt_compiler::compile;
use simt_isa::{CmpOp, Dim3, Guard, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

/// `HotSpot` (Rodinia): one step of the thermal stencil
/// `t' = t + cn*(n+s-2t) + ce*(e+w-2t) + ca*(amb-t) + p`. TB (16,16).
#[must_use]
pub fn hotspot(scale: Scale) -> Workload {
    let (log_w, h) = match scale {
        Scale::Test => (5u32, 16u32),
        Scale::Eval => (6u32, 96u32),
    };
    let w = 1u32 << log_w;

    let mut b = KernelBuilder::new("hotspot");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let temp_p = b.param(0);
    let power_p = b.param(1);
    let out_p = b.param(2);
    let cn = b.param(3);
    let ce = b.param(4);
    let ca = b.param(5);
    let amb = b.param(6);
    let gx = b.imad(cx, 16u32, tx);
    let gy = b.imad(cy, 16u32, ty);
    let lin0 = b.shl(gy, log_w);
    let lin = b.iadd(lin0, gx);
    let off = b.shl_imm(lin, 2);
    let taddr = b.iadd(temp_p, off);
    let tc = b.load(MemSpace::Global, taddr, 0);
    // Clamped neighbours.
    let qn = b.setp(CmpOp::Gt, gy, 0u32);
    let qs = b.setp(CmpOp::Lt, gy, h - 1);
    let qw = b.setp(CmpOp::Gt, gx, 0u32);
    let qe = b.setp(CmpOp::Lt, gx, w - 1);
    let tn = b.mov(tc);
    let ts = b.mov(tc);
    let tw_ = b.mov(tc);
    let te = b.mov(tc);
    let row_b = (w * 4) as i32;
    for (dst, pred, o) in [(tn, qn, -row_b), (ts, qs, row_b), (tw_, qw, -4), (te, qe, 4)] {
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Ld(MemSpace::Global),
                Some(dst),
                None,
                vec![taddr.into()],
            )
            .with_offset(o)
            .with_guard(Guard::if_true(pred)),
        );
    }
    let paddr = b.iadd(power_p, off);
    let pw = b.load(MemSpace::Global, paddr, 0);
    // Vertical and horizontal diffusion.
    let two = b.movf(2.0);
    let t2 = b.fmul(two, tc);
    let vsum0 = b.fadd(tn, ts);
    let vsum = b.fsub(vsum0, t2);
    let hsum0 = b.fadd(te, tw_);
    let hsum = b.fsub(hsum0, t2);
    let d0 = b.fmul(cn, vsum);
    let d1 = b.ffma(ce, hsum, d0);
    let adiff = b.fsub(amb, tc);
    let d2 = b.ffma(ca, adiff, d1);
    let d3 = b.fadd(d2, pw);
    let res = b.fadd(tc, d3);
    let oaddr = b.iadd(out_p, off);
    b.store(MemSpace::Global, oaddr, res, 0);
    let ck = compile(b.finish());

    let n = (w * h) as usize;
    let temp = random_f32s(61, n, 320.0, 340.0);
    let power = random_f32s(67, n, 0.0, 0.05);
    let (cnv, cev, cav, ambv) = (0.03f32, 0.02f32, 0.005f32, 300.0f32);
    let mut mem = GlobalMemory::new();
    let t_addr = mem.alloc(n as u64 * 4);
    let p_addr = mem.alloc(n as u64 * 4);
    let o_addr = mem.alloc(n as u64 * 4);
    mem.write_slice_f32(t_addr, &temp);
    mem.write_slice_f32(p_addr, &power);
    let launch =
        LaunchConfig::new(Dim3::two_d(w / 16, h / 16), Dim3::two_d(16, 16)).with_params(vec![
            Value(t_addr as u32),
            Value(p_addr as u32),
            Value(o_addr as u32),
            Value::from_f32(cnv),
            Value::from_f32(cev),
            Value::from_f32(cav),
            Value::from_f32(ambv),
        ]);

    let mut expected = vec![0f32; n];
    for y in 0..h as usize {
        for x in 0..w as usize {
            let idx = y * w as usize + x;
            let tc = temp[idx];
            let tn = if y > 0 { temp[idx - w as usize] } else { tc };
            let ts = if y < (h - 1) as usize { temp[idx + w as usize] } else { tc };
            let twv = if x > 0 { temp[idx - 1] } else { tc };
            let te = if x < (w - 1) as usize { temp[idx + 1] } else { tc };
            let t2 = 2.0 * tc;
            let vsum = (tn + ts) - t2;
            let hsum = (te + twv) - t2;
            let d = cav.mul_add(ambv - tc, cev.mul_add(hsum, cnv * vsum));
            expected[idx] = tc + (d + power[idx]);
        }
    }
    Workload {
        name: "HotSpot",
        abbr: "HS",
        block: Dim3::two_d(16, 16),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(o_addr, expected.len()), &expected, 1e-3)
        }),
    }
}

/// `CP` (Parboil-style coulombic potential): each thread accumulates the
/// potential of all atoms at its grid point; atom records are loaded from
/// uniform addresses. TB (16,8).
#[must_use]
pub fn coulombic_potential(scale: Scale) -> Workload {
    let (gw, gh, natoms) = match scale {
        Scale::Test => (32u32, 16u32, 8u32),
        Scale::Eval => (128u32, 64u32, 32u32),
    };

    let mut b = KernelBuilder::new("cp");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let atoms_p = b.param(0);
    let out_p = b.param(1);
    let spacing = b.param(2);
    let gx = b.imad(cx, 16u32, tx);
    let gy = b.imad(cy, 8u32, ty);
    let gxf0 = b.i2f(gx);
    let gxf = b.fmul(gxf0, spacing);
    let gyf0 = b.i2f(gy);
    let gyf = b.fmul(gyf0, spacing);
    let energy = b.movf(0.0);
    let aoff = b.mov(0u32); // uniform atom table offset
    let i = b.mov(0u32);
    let p = b.alloc_pred();
    b.do_while(|b| {
        let abase = b.iadd(atoms_p, aoff);
        let ax = b.load(MemSpace::Global, abase, 0);
        let ay = b.load(MemSpace::Global, abase, 4);
        let aq = b.load(MemSpace::Global, abase, 8);
        let dx = b.fsub(gxf, ax);
        let dy = b.fsub(gyf, ay);
        let dy2 = b.fmul(dy, dy);
        let r2 = b.ffma(dx, dx, dy2);
        // softened 1/sqrt(r2 + 0.05)
        let soft = b.movf(0.05);
        let r2s = b.fadd(r2, soft);
        let r = b.fsqrt(r2s);
        let rinv = b.frcp(r);
        b.ffma_to(energy, aq, rinv, energy);
        b.iadd_to(aoff, aoff, 16u32);
        b.iadd_to(i, i, 1u32);
        b.setp_to(p, CmpOp::Lt, i, natoms);
        Guard::if_true(p)
    });
    let lin = b.imad(gy, gw, gx);
    let off = b.shl_imm(lin, 2);
    let oaddr = b.iadd(out_p, off);
    b.store(MemSpace::Global, oaddr, energy, 0);
    let ck = compile(b.finish());

    let spacing_v = 0.25f32;
    let ax = random_f32s(71, natoms as usize, 0.0, gw as f32 * spacing_v);
    let ay = random_f32s(73, natoms as usize, 0.0, gh as f32 * spacing_v);
    let aq = random_f32s(79, natoms as usize, -1.0, 1.0);
    let mut atom_tbl = vec![0f32; natoms as usize * 4];
    for a in 0..natoms as usize {
        atom_tbl[a * 4] = ax[a];
        atom_tbl[a * 4 + 1] = ay[a];
        atom_tbl[a * 4 + 2] = aq[a];
    }
    let n = (gw * gh) as usize;
    let mut mem = GlobalMemory::new();
    let a_addr = mem.alloc(atom_tbl.len() as u64 * 4);
    let o_addr = mem.alloc(n as u64 * 4);
    mem.write_slice_f32(a_addr, &atom_tbl);
    let launch = LaunchConfig::new(Dim3::two_d(gw / 16, gh / 8), Dim3::two_d(16, 8))
        .with_params(vec![Value(a_addr as u32), Value(o_addr as u32), Value::from_f32(spacing_v)]);

    let mut expected = vec![0f32; n];
    for y in 0..gh as usize {
        for x in 0..gw as usize {
            let gxf = x as f32 * spacing_v;
            let gyf = y as f32 * spacing_v;
            let mut e = 0f32;
            for a in 0..natoms as usize {
                let dx = gxf - ax[a];
                let dy = gyf - ay[a];
                let r2 = dx.mul_add(dx, dy * dy);
                let r = (r2 + 0.05).sqrt();
                e = aq[a].mul_add(1.0 / r, e);
            }
            expected[y * gw as usize + x] = e;
        }
    }
    Workload {
        name: "CP",
        abbr: "CP",
        block: Dim3::two_d(16, 8),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(o_addr, expected.len()), &expected, 2e-3)
        }),
    }
}

/// `convolutionTexture` (CUDA SDK): row convolution with a 5-tap kernel
/// held at uniform addresses, clamped at image borders. TB (16,16).
#[must_use]
pub fn convolution_texture(scale: Scale) -> Workload {
    let (log_w, h) = match scale {
        Scale::Test => (5u32, 16u32),
        Scale::Eval => (7u32, 64u32),
    };
    let w = 1u32 << log_w;
    const RADIUS: u32 = 2;

    let mut b = KernelBuilder::new("convtex");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let src = b.param(0);
    let dst = b.param(1);
    let kern = b.param(2);
    let gx = b.imad(cx, 16u32, tx);
    let gy = b.imad(cy, 16u32, ty);
    let rowbase0 = b.shl(gy, log_w);
    let acc = b.movf(0.0);
    let wmax = b.mov(w - 1);
    b.for_count(2 * RADIUS + 1, |b, k| {
        // col = clamp(gx + k - RADIUS, 0, w-1)
        let c0 = b.iadd(gx, k);
        let c1 = b.isub(c0, RADIUS);
        let c2 = b.imax(c1, 0u32);
        let col = b.imin(c2, wmax);
        let lin = b.iadd(rowbase0, col);
        let soff = b.shl_imm(lin, 2);
        let saddr = b.iadd(src, soff);
        let v = b.load(MemSpace::Global, saddr, 0);
        // Uniform kernel tap.
        let koff = b.shl_imm(k, 2);
        let kaddr = b.iadd(kern, koff);
        let kv = b.load(MemSpace::Global, kaddr, 0);
        b.ffma_to(acc, v, kv, acc);
    });
    let olin = b.iadd(rowbase0, gx);
    let ooff = b.shl_imm(olin, 2);
    let oaddr = b.iadd(dst, ooff);
    b.store(MemSpace::Global, oaddr, acc, 0);
    let ck = compile(b.finish());

    let taps: Vec<f32> = vec![0.0625, 0.25, 0.375, 0.25, 0.0625];
    let n = (w * h) as usize;
    let img = random_f32s(83, n, -1.0, 1.0);
    let mut mem = GlobalMemory::new();
    let s_addr = mem.alloc(n as u64 * 4);
    let d_addr = mem.alloc(n as u64 * 4);
    let k_addr = mem.alloc(taps.len() as u64 * 4);
    mem.write_slice_f32(s_addr, &img);
    mem.write_slice_f32(k_addr, &taps);
    let launch = LaunchConfig::new(Dim3::two_d(w / 16, h / 16), Dim3::two_d(16, 16))
        .with_params(vec![Value(s_addr as u32), Value(d_addr as u32), Value(k_addr as u32)]);

    let mut expected = vec![0f32; n];
    for y in 0..h as usize {
        for x in 0..w as usize {
            let mut acc = 0f32;
            for (k, tap) in taps.iter().enumerate() {
                let col =
                    (x as i64 + k as i64 - i64::from(RADIUS)).clamp(0, i64::from(w) - 1) as usize;
                acc = img[y * w as usize + col].mul_add(*tap, acc);
            }
            expected[y * w as usize + x] = acc;
        }
    }
    Workload {
        name: "convolutionTexture",
        abbr: "CONVTEX",
        block: Dim3::two_d(16, 16),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(d_addr, expected.len()), &expected, 1e-3)
        }),
    }
}

/// `MatrixMul` (CUDA SDK): classic shared-memory tiled matrix multiply.
/// With a (32,32) TB the `b_tile[k][tx]` shared loads of the inner product
/// are unstructured-redundant — the paper's flagship example (Figure 6).
#[must_use]
pub fn matrix_mul(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 64u32,
        Scale::Eval => 128u32,
    };
    const TILE: u32 = 32;

    let mut b = KernelBuilder::new("matrix_mul");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cx = b.special(SpecialReg::CtaidX);
    let cy = b.special(SpecialReg::CtaidY);
    let a_p = b.param(0);
    let b_p = b.param(1);
    let c_p = b.param(2);
    let smem_a = b.alloc_shared(TILE * TILE * 4);
    let smem_b = b.alloc_shared(TILE * TILE * 4);
    let row = b.imad(cy, TILE, ty);
    let col = b.imad(cx, TILE, tx);
    let acc = b.movf(0.0);
    // Per-thread tile slots.
    let slot_lin = b.imad(ty, TILE, tx);
    let slot = b.shl_imm(slot_lin, 2);
    // Walking pointers: A[row][t*TILE+tx], B[t*TILE+ty][col].
    let arow0 = b.imad(row, n, tx);
    let aoff = b.shl_imm(arow0, 2);
    let aptr = b.iadd(a_p, aoff);
    let brow0 = b.imad(ty, n, col);
    let boff = b.shl_imm(brow0, 2);
    let bptr = b.iadd(b_p, boff);
    let t = b.mov(0u32);
    let p = b.alloc_pred();
    let pk = b.alloc_pred();
    b.do_while(|b| {
        let av = b.load(MemSpace::Global, aptr, 0);
        b.store(MemSpace::Shared, slot, av, smem_a as i32);
        let bv = b.load(MemSpace::Global, bptr, 0);
        b.store(MemSpace::Shared, slot, bv, smem_b as i32);
        b.barrier();
        // Inner product over the tile, unrolled x8 like the paper's
        // Figure 6 kernel: the b_tile address walks k*TILE+tx
        // (conditionally redundant), the a_tile address walks ty*TILE+k
        // (vector). Unrolled taps use immediate offsets.
        let a_addr = b.shl_imm(ty, 7); // ty*TILE*4
        let b_addr = b.shl_imm(tx, 2);
        let k = b.mov(0u32);
        b.do_while(|b| {
            for j in 0..8i32 {
                let la = b.load(MemSpace::Shared, a_addr, smem_a as i32 + j * 4);
                let lb = b.load(MemSpace::Shared, b_addr, smem_b as i32 + j * (TILE as i32 * 4));
                b.ffma_to(acc, la, lb, acc);
            }
            b.iadd_to(a_addr, a_addr, 32u32);
            b.iadd_to(b_addr, b_addr, TILE * 4 * 8);
            b.iadd_to(k, k, 8u32);
            b.setp_to(pk, CmpOp::Lt, k, TILE);
            Guard::if_true(pk)
        });
        b.barrier();
        // Advance the walking pointers by one tile.
        b.iadd_to(aptr, aptr, TILE * 4);
        let bstep = TILE * n * 4;
        b.iadd_to(bptr, bptr, bstep);
        b.iadd_to(t, t, 1u32);
        b.setp_to(p, CmpOp::Lt, t, n / TILE);
        Guard::if_true(p)
    });
    let clin = b.imad(row, n, col);
    let coff = b.shl_imm(clin, 2);
    let caddr = b.iadd(c_p, coff);
    b.store(MemSpace::Global, caddr, acc, 0);
    let ck = compile(b.finish());

    let total = (n * n) as usize;
    let a_m = random_f32s(89, total, -1.0, 1.0);
    let b_m = random_f32s(97, total, -1.0, 1.0);
    let mut mem = GlobalMemory::new();
    let a_addr = mem.alloc(total as u64 * 4);
    let b_addr = mem.alloc(total as u64 * 4);
    let c_addr = mem.alloc(total as u64 * 4);
    mem.write_slice_f32(a_addr, &a_m);
    mem.write_slice_f32(b_addr, &b_m);
    let launch = LaunchConfig::new(Dim3::two_d(n / TILE, n / TILE), Dim3::two_d(TILE, TILE))
        .with_params(vec![Value(a_addr as u32), Value(b_addr as u32), Value(c_addr as u32)]);

    // CPU reference with the same accumulation order (k within tile, tiles
    // in order).
    let mut expected = vec![0f32; total];
    for i in 0..n as usize {
        for j in 0..n as usize {
            let mut acc = 0f32;
            for t in 0..(n / TILE) as usize {
                for k in 0..TILE as usize {
                    let kk = t * TILE as usize + k;
                    acc = a_m[i * n as usize + kk].mul_add(b_m[kk * n as usize + j], acc);
                }
            }
            expected[i * n as usize + j] = acc;
        }
    }
    Workload {
        name: "MatrixMul",
        abbr: "MM",
        block: Dim3::two_d(TILE, TILE),
        is_2d: true,
        ck,
        launch,
        memory: mem,
        check: Box::new(move |m: &GlobalMemory| {
            compare_f32(&m.read_vec_f32(c_addr, expected.len()), &expected, 1e-3)
        }),
    }
}
