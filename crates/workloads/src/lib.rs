//! The 13 benchmarks of the paper's Table 1, re-authored in the virtual
//! SIMT ISA with matching threadblock shapes, plus CPU reference
//! implementations used to validate every simulated run.
//!
//! | Abbr | Name | TB dim | | Abbr | Name | TB dim |
//! |---|---|---|---|---|---|---|
//! | BIN | binomialOptions | (256,1) | | IMNLM | ImageDenoisingNLM | (16,16) |
//! | PT | pathfinder | (1024,1) | | BP | Backprop | (16,16) |
//! | FW | fastWalshTransform | (256,1) | | DCT8x8 | DCT8x8 | (8,8) |
//! | SR1 | SRADV1 | (512,1) | | FWS | Floyd-Warshall | (16,16) |
//! | LIB | LIB | (256,1) | | HS | HotSpot | (16,16) |
//! | | | | | CP | CP | (16,8) |
//! | | | | | CONVTEX | convolutionTexture | (16,16) |
//! | | | | | MM | MatrixMul | (32,32) |
//!
//! ```no_run
//! use workloads::{catalog, Scale};
//! use gpu_sim::{GpuConfig, Technique};
//!
//! for w in catalog(Scale::Test) {
//!     let res = w.run(&GpuConfig::test_small(), Technique::Base);
//!     println!("{}: {} cycles", w.abbr, res.cycles);
//! }
//! ```

pub mod common;
pub mod ext_3d;
pub mod fixtures;
pub mod one_d;
pub mod two_d_a;
pub mod two_d_b;

pub use common::{Scale, Workload};

/// All 13 benchmarks, 1D first then 2D (the order of the paper's figures).
#[must_use]
pub fn catalog(scale: Scale) -> Vec<Workload> {
    vec![
        one_d::binomial_options(scale),
        one_d::pathfinder(scale),
        one_d::fast_walsh(scale),
        one_d::srad_v1(scale),
        one_d::lib_mc(scale),
        two_d_a::image_denoising_nlm(scale),
        two_d_a::backprop(scale),
        two_d_a::dct8x8(scale),
        two_d_a::floyd_warshall(scale),
        two_d_b::hotspot(scale),
        two_d_b::coulombic_potential(scale),
        two_d_b::convolution_texture(scale),
        two_d_b::matrix_mul(scale),
    ]
}

/// Looks a workload up by abbreviation.
#[must_use]
pub fn by_abbr(abbr: &str, scale: Scale) -> Option<Workload> {
    catalog(scale).into_iter().find(|w| w.abbr.eq_ignore_ascii_case(abbr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, Technique};

    #[test]
    fn catalog_matches_table_1() {
        let c = catalog(Scale::Test);
        assert_eq!(c.len(), 13);
        let abbrs: Vec<&str> = c.iter().map(|w| w.abbr).collect();
        assert_eq!(
            abbrs,
            [
                "BIN", "PT", "FW", "SR1", "LIB", "IMNLM", "BP", "DCT8x8", "FWS", "HS", "CP",
                "CONVTEX", "MM"
            ]
        );
        assert_eq!(c.iter().filter(|w| !w.is_2d).count(), 5);
        assert_eq!(c.iter().filter(|w| w.is_2d).count(), 8);
        // Table 1 block shapes.
        let dims: Vec<(u32, u32)> = c.iter().map(|w| (w.block.x, w.block.y)).collect();
        assert_eq!(
            dims,
            [
                (256, 1),
                (1024, 1),
                (256, 1),
                (512, 1),
                (256, 1),
                (16, 16),
                (16, 16),
                (8, 8),
                (16, 16),
                (16, 16),
                (16, 8),
                (16, 16),
                (32, 32)
            ]
        );
    }

    #[test]
    fn by_abbr_lookup() {
        assert!(by_abbr("mm", Scale::Test).is_some());
        assert!(by_abbr("LIB", Scale::Test).is_some());
        assert!(by_abbr("nope", Scale::Test).is_none());
    }

    // One correctness test per workload on the baseline (validation is
    // built into Workload::run).
    macro_rules! base_runs {
        ($($name:ident => $abbr:expr),+ $(,)?) => {
            $(
                #[test]
                fn $name() {
                    let w = by_abbr($abbr, Scale::Test).expect("exists");
                    let res = w.run(&GpuConfig::test_small(), Technique::Base);
                    assert!(res.cycles > 0);
                    assert!(res.stats.instrs_executed > 0);
                }
            )+
        };
    }
    base_runs! {
        base_bin => "BIN",
        base_pt => "PT",
        base_fw => "FW",
        base_sr1 => "SR1",
        base_lib => "LIB",
        base_imnlm => "IMNLM",
        base_bp => "BP",
        base_dct => "DCT8x8",
        base_fws => "FWS",
        base_hs => "HS",
        base_cp => "CP",
        base_convtex => "CONVTEX",
        base_mm => "MM",
    }

    // DARSIE must produce identical outputs (shadow-checked in the
    // test_small config) and skip instructions on the 2D benchmarks.
    macro_rules! darsie_runs {
        ($($name:ident => $abbr:expr),+ $(,)?) => {
            $(
                #[test]
                fn $name() {
                    let w = by_abbr($abbr, Scale::Test).expect("exists");
                    let res = w.run(&GpuConfig::test_small(), Technique::darsie());
                    if w.is_2d && w.launch.promotes_conditional_redundancy() {
                        assert!(
                            res.stats.instrs_skipped.total() > 0,
                            "{} skipped nothing", w.abbr
                        );
                    }
                }
            )+
        };
    }
    darsie_runs! {
        darsie_bin => "BIN",
        darsie_pt => "PT",
        darsie_fw => "FW",
        darsie_sr1 => "SR1",
        darsie_lib => "LIB",
        darsie_imnlm => "IMNLM",
        darsie_bp => "BP",
        darsie_dct => "DCT8x8",
        darsie_fws => "FWS",
        darsie_hs => "HS",
        darsie_cp => "CP",
        darsie_convtex => "CONVTEX",
        darsie_mm => "MM",
    }
}
