//! Binary- and text-format integration: every instruction of every
//! Table-1 workload kernel must survive a round trip through the 64-bit
//! encoder (including its two DARSIE marking bits) and through the text
//! assembler, unchanged.

use simt_isa::{decode, encode, parse_kernel, EncodeError, Marking};
use workloads::{catalog, Scale};

#[test]
fn workload_kernels_roundtrip_through_the_64bit_encoding() {
    let mut encoded = 0usize;
    let mut legalization_needed = 0usize;
    for w in catalog(Scale::Test) {
        for (pc, instr) in w.ck.kernel.instrs.iter().enumerate() {
            let marking = w.ck.markings[pc];
            match encode(instr, marking) {
                Ok(word) => {
                    let (decoded, m2) = decode(word)
                        .unwrap_or_else(|e| panic!("{} pc {pc}: decode failed: {e}", w.abbr));
                    assert_eq!(&decoded, instr, "{} pc {pc} word {word:#018x}", w.abbr);
                    assert_eq!(m2, marking, "{} pc {pc}: marking bits lost", w.abbr);
                    encoded += 1;
                }
                // Fixed-width ISAs cannot encode every immediate; such
                // instructions would be legalized (e.g. a MOV of the wide
                // constant first). They must be the exception.
                Err(
                    EncodeError::ImmediateTooWide
                    | EncodeError::OffsetTooWide
                    | EncodeError::TooManyImmediates,
                ) => legalization_needed += 1,
                Err(e) => panic!("{} pc {pc}: unexpected encode error {e}", w.abbr),
            }
        }
    }
    assert!(encoded > 300, "expected substantial coverage, encoded {encoded}");
    let frac = legalization_needed as f64 / (encoded + legalization_needed) as f64;
    assert!(
        frac < 0.15,
        "too many unencodable instructions: {legalization_needed}/{}",
        encoded + legalization_needed
    );
}

#[test]
fn workload_kernels_roundtrip_through_the_assembler() {
    for w in catalog(Scale::Test) {
        let text = w.ck.kernel.disassemble();
        let (parsed, _) =
            parse_kernel(&w.ck.kernel.name, &text).unwrap_or_else(|e| panic!("{}: {e}", w.abbr));
        assert_eq!(parsed.instrs, w.ck.kernel.instrs, "{}", w.abbr);
    }
}

#[test]
fn annotated_disassembly_preserves_markings() {
    for w in catalog(Scale::Test) {
        let text = w.ck.annotated_disassembly();
        let (parsed, markings) =
            parse_kernel(&w.ck.kernel.name, &text).unwrap_or_else(|e| panic!("{}: {e}", w.abbr));
        assert_eq!(parsed.instrs, w.ck.kernel.instrs, "{}", w.abbr);
        assert_eq!(markings, w.ck.markings, "{}: markings corrupted in text", w.abbr);
    }
}

#[test]
fn marking_bits_are_ignored_gracefully_by_unaware_decoders() {
    // Paper Section 4.2: binaries with markings run on non-DARSIE
    // hardware. Masking the two marking bits must yield the same
    // instruction with a Vector marking.
    let w = workloads::by_abbr("MM", Scale::Test).expect("MM exists");
    for (pc, instr) in w.ck.kernel.instrs.iter().enumerate() {
        if let Ok(word) = encode(instr, w.ck.markings[pc]) {
            let stripped = word & !(0b11 << 55);
            let (decoded, m) = decode(stripped).expect("still decodable");
            assert_eq!(&decoded, instr);
            assert_eq!(m, Marking::Vector);
        }
    }
}
