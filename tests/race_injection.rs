//! Property-based check of the shared-memory race detector: a two-phase
//! neighbor-exchange kernel is verified clean with its barrier in place,
//! and injecting the race (dropping the barrier between the store phase
//! and a `tid.x + d` load) must always be caught — statically (the
//! addresses are affine) and dynamically (V303).

use gpu_sim::GlobalMemory;
use proptest::prelude::*;
use simt_compiler::CompiledKernel;
use simt_isa::{Dim3, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};
use simt_verify::{verify_full, LintCode};

/// Thread `t` stores word `t`, then loads word `t + delta`. With the
/// barrier the phases are separate epochs; without it, thread `t`'s load
/// races thread `t + delta`'s store.
fn exchange_kernel(threads: u32, delta: u32, with_barrier: bool) -> CompiledKernel {
    let mut b = KernelBuilder::new("exchange");
    let t = b.special(SpecialReg::TidX);
    // Over-allocate by `delta` words so the shifted load stays in bounds.
    let smem = b.alloc_shared((threads + delta) * 4);
    let off = b.shl_imm(t, 2);
    let waddr = b.iadd(off, smem);
    b.store(MemSpace::Shared, waddr, t, 0);
    if with_barrier {
        b.barrier();
    }
    let v = b.load(MemSpace::Shared, waddr, (delta * 4) as i32);
    let out = b.param(0);
    let gaddr = b.iadd(out, off);
    b.store(MemSpace::Global, gaddr, v, 0);
    simt_compiler::compile(b.finish())
}

fn verify(ck: &CompiledKernel, threads: u32) -> simt_verify::Diagnostics {
    let mut mem = GlobalMemory::new();
    let out = mem.alloc(u64::from(threads) * 4);
    let launch = LaunchConfig::new(1u32, Dim3::one_d(threads)).with_params(vec![Value(out as u32)]);
    verify_full(ck, &launch, mem)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn injected_race_is_always_caught(threads in 8u32..=64, delta in 1u32..=4) {
        // Control: with the barrier, no race pass may fire at all.
        let clean = exchange_kernel(threads, delta, true);
        let r = verify(&clean, threads);
        prop_assert!(
            r.with_code(LintCode::SharedRaceStatic).is_empty()
                && r.with_code(LintCode::SharedAddrUnknown).is_empty()
                && r.with_code(LintCode::SharedRaceDynamic).is_empty(),
            "clean kernel flagged (threads={} delta={}):\n{}", threads, delta, r.render()
        );

        // Injected race: both detectors must catch it, and the report
        // must fail verification.
        let racy = exchange_kernel(threads, delta, false);
        let r = verify(&racy, threads);
        prop_assert!(
            !r.with_code(LintCode::SharedRaceStatic).is_empty(),
            "no V301 (threads={} delta={}):\n{}", threads, delta, r.render()
        );
        prop_assert!(
            !r.with_code(LintCode::SharedRaceDynamic).is_empty(),
            "no V303 (threads={} delta={}):\n{}", threads, delta, r.render()
        );
        prop_assert!(!r.is_clean());
    }
}
