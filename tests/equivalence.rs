//! The central soundness property: every redundancy-elimination technique
//! preserves architected state. Each workload runs under every technique
//! with the shadow-check oracle enabled; outputs are validated against the
//! CPU reference and the final memory image must match the baseline's
//! bit for bit.

use darsie_repro::sim::{GpuConfig, Technique};
use workloads::{catalog, Scale};

fn cfg() -> GpuConfig {
    GpuConfig::test_small() // shadow_check = true
}

#[test]
fn all_techniques_preserve_architected_state() {
    for w in catalog(Scale::Test) {
        let base = w.run(&cfg(), Technique::Base);
        let base_fp = base.memory.fingerprint();
        for tech in [
            Technique::Uv,
            Technique::DacIdeal,
            Technique::darsie(),
            Technique::Darsie(darsie::DarsieConfig::ignore_store()),
            Technique::Darsie(darsie::DarsieConfig::no_cf_sync()),
            Technique::Darsie(darsie::DarsieConfig::no_versioning()),
            Technique::SiliconSync,
        ] {
            // run() already validates outputs against the CPU reference.
            let r = w.run(&cfg(), tech.clone());
            assert_eq!(
                r.memory.fingerprint(),
                base_fp,
                "{} under {}: memory image diverged from baseline",
                w.abbr,
                tech.label()
            );
        }
    }
}

#[test]
fn instruction_count_is_conserved() {
    // Eliminated instructions replace executions one for one: for every
    // technique, executed + eliminated equals the baseline's executed
    // count (control flow is deterministic).
    for w in catalog(Scale::Test) {
        let base = w.run(&cfg(), Technique::Base).stats.instrs_executed;
        for tech in [Technique::Uv, Technique::DacIdeal, Technique::darsie()] {
            let s = w.run(&cfg(), tech.clone()).stats;
            let total = s.instrs_executed + s.instrs_skipped.total() + s.instrs_reused.total();
            assert_eq!(
                total,
                base,
                "{} under {}: executed {} + eliminated {} != baseline {}",
                w.abbr,
                tech.label(),
                s.instrs_executed,
                s.instrs_skipped.total() + s.instrs_reused.total(),
                base
            );
        }
    }
}

#[test]
fn darsie_skips_on_promoted_2d_blocks_only() {
    for w in catalog(Scale::Test) {
        let s = w.run(&cfg(), Technique::darsie()).stats;
        if w.launch.promotes_conditional_redundancy() {
            assert!(s.instrs_skipped.total() > 0, "{} promotes but skipped nothing", w.abbr);
        }
        if !w.is_2d {
            // 1D blocks can still skip *definitely* redundant (uniform)
            // work, but never affine/unstructured.
            assert_eq!(s.instrs_skipped.affine, 0, "{}", w.abbr);
            assert_eq!(s.instrs_skipped.unstructured, 0, "{}", w.abbr);
        }
    }
}

#[test]
fn schedulers_produce_identical_results() {
    use darsie_repro::sim::SchedulerPolicy;
    for abbr in ["MM", "HS", "LIB"] {
        let w = workloads::by_abbr(abbr, Scale::Test).expect("exists");
        let gto = w.run(&cfg(), Technique::darsie());
        let lrr_cfg = GpuConfig { scheduler: SchedulerPolicy::Lrr, ..cfg() };
        let lrr = w.run(&lrr_cfg, Technique::darsie());
        assert_eq!(
            gto.memory.fingerprint(),
            lrr.memory.fingerprint(),
            "{abbr}: scheduler policy changed results"
        );
    }
}

#[test]
fn multi_sm_partitioning_preserves_results() {
    for abbr in ["FW", "DCT8x8"] {
        let w = workloads::by_abbr(abbr, Scale::Test).expect("exists");
        let one = w.run(&cfg(), Technique::darsie());
        let four = w.run(&GpuConfig { num_sms: 4, ..cfg() }, Technique::darsie());
        assert_eq!(
            one.memory.fingerprint(),
            four.memory.fingerprint(),
            "{abbr}: SM count changed results"
        );
    }
}
