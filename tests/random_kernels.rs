//! Property-based soundness: for *arbitrary* structured kernels, every
//! elimination technique must produce exactly the baseline's architected
//! state, and eliminated instructions must be conserved one-for-one.
//!
//! The generator builds random kernels from the public `KernelBuilder`
//! DSL: random ALU dataflow over a live-register pool seeded with thread
//! intrinsics and parameters, bounds-masked global loads and stores,
//! predicated regions (`if_then`), bounded `do_while` loops and barriers.

use gpu_sim::{GlobalMemory, Gpu, GpuConfig, Technique};
use proptest::prelude::*;
use simt_isa::{
    CmpOp, Dim3, Guard, KernelBuilder, LaunchConfig, MemSpace, Op, Reg, SpecialReg, Value,
};

/// One step of the generated program.
#[derive(Debug, Clone)]
enum Step {
    Alu(u8, u8, u8),     // op selector, src selectors
    AluImm(u8, u8, u32), // op selector, src selector, immediate
    Load(u8),            // address from selected reg (masked in-bounds)
    Store(u8, u8),       // address selector, value selector
    IfThen(u8, Vec<Step>),
    Loop(u8, Vec<Step>), // trip count 1..=4, body
    Barrier,
}

fn arb_step(depth: u32) -> impl Strategy<Value = Step> {
    let leaf = prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Step::Alu(o, a, b)),
        (any::<u8>(), any::<u8>(), any::<u32>()).prop_map(|(o, a, i)| Step::AluImm(o, a, i)),
        any::<u8>().prop_map(Step::Load),
        (any::<u8>(), any::<u8>()).prop_map(|(a, v)| Step::Store(a, v)),
        Just(Step::Barrier),
    ];
    leaf.prop_recursive(depth, 24, 6, |inner| {
        prop_oneof![
            (any::<u8>(), prop::collection::vec(inner.clone(), 1..5))
                .prop_map(|(s, body)| Step::IfThen(s, body)),
            (1u8..=3, prop::collection::vec(inner, 1..4)).prop_map(|(n, body)| Step::Loop(n, body)),
        ]
    })
}

const ALU_OPS: [Op; 10] =
    [Op::IAdd, Op::ISub, Op::IMul, Op::IMin, Op::IMax, Op::And, Op::Or, Op::Xor, Op::Shl, Op::IMad];

struct Gen {
    pool: Vec<Reg>,
    /// Read-only data region (loads).
    scratch_base: Reg,
    /// Write-only region (stores) — disjoint from the load region so the
    /// generated programs are race-free: racing stores write
    /// address-derived values, and loads never observe stores.
    store_base: Reg,
    preds: Vec<simt_isa::Pred>,
    next_pred: usize,
    in_divergent: bool,
}

impl Gen {
    fn pick(&self, sel: u8) -> Reg {
        self.pool[usize::from(sel) % self.pool.len()]
    }

    /// Rotating predicate pool (the architecture has only 7; the root
    /// generator pre-allocates four and every scope rotates through them).
    fn pred(&mut self, _b: &mut KernelBuilder) -> simt_isa::Pred {
        let p = self.preds[self.next_pred % self.preds.len()];
        self.next_pred += 1;
        p
    }

    fn emit(&mut self, b: &mut KernelBuilder, steps: &[Step]) {
        for s in steps {
            match s {
                Step::Alu(o, a, c) => {
                    let op = ALU_OPS[usize::from(*o) % ALU_OPS.len()];
                    let (ra, rc) = (self.pick(*a), self.pick(*c));
                    let dst = if matches!(op, Op::IMad) {
                        b.imad(ra, rc, self.pick(o.wrapping_add(13)))
                    } else if matches!(op, Op::Shl) {
                        // Bounded shift amounts.
                        let amt = b.and(rc, 7u32);
                        b.shl(ra, amt)
                    } else {
                        let mut i =
                            simt_isa::Instruction::new(op, None, None, vec![ra.into(), rc.into()]);
                        let d = b.alloc();
                        i.dst = Some(d);
                        b.emit(i);
                        d
                    };
                    self.pool.push(dst);
                }
                Step::AluImm(o, a, imm) => {
                    let op = ALU_OPS[usize::from(*o) % 8]; // two-source ops only
                    let mut i = simt_isa::Instruction::new(
                        op,
                        None,
                        None,
                        vec![self.pick(*a).into(), simt_isa::Operand::Imm(*imm % 64)],
                    );
                    let d = b.alloc();
                    i.dst = Some(d);
                    b.emit(i);
                    self.pool.push(d);
                }
                Step::Load(a) => {
                    // addr = data_base + (reg & 0x3FC): 4-aligned, in the
                    // 1 KiB scratch region.
                    let off = b.and(self.pick(*a), 0x3FCu32);
                    let addr = b.iadd(self.scratch_base, off);
                    let v = b.load(MemSpace::Global, addr, 0);
                    self.pool.push(v);
                }
                Step::Store(a, v) => {
                    let off = b.and(self.pick(*a), 0x3FCu32);
                    let addr = b.iadd(self.store_base, off);
                    // Stores race between threads by construction; make
                    // them deterministic by storing a value derived from
                    // the address itself.
                    let val = b.xor(off, 0x5Au32);
                    let _ = v;
                    b.store(MemSpace::Global, addr, val, 0);
                }
                Step::IfThen(selector, body) => {
                    let cond = self.pick(*selector);
                    let masked = b.and(cond, 3u32);
                    let p = self.pred(b);
                    b.setp_to(p, CmpOp::Eq, masked, 1u32);
                    let was = self.in_divergent;
                    self.in_divergent = true;
                    let mut inner = std::mem::take(&mut self.pool);
                    let (sb, wb) = (self.scratch_base, self.store_base);
                    let preds = self.preds.clone();
                    b.if_then(Guard::if_true(p), |b| {
                        let mut g = Gen {
                            pool: inner.clone(),
                            scratch_base: sb,
                            store_base: wb,
                            preds,
                            next_pred: 1,
                            in_divergent: true,
                        };
                        g.emit(b, body);
                        inner = g.pool;
                    });
                    // Registers defined inside a divergent region hold
                    // path-dependent values; keep them (the analysis and
                    // hardware must cope), but the original pool is what
                    // is guaranteed defined.
                    self.pool = inner;
                    self.in_divergent = was;
                }
                Step::Loop(n, body) => {
                    let trips = u32::from(*n);
                    let i = b.mov(0u32);
                    let p = self.pred(b);
                    let body = body.clone();
                    let mut pool = std::mem::take(&mut self.pool);
                    let (sb, wb) = (self.scratch_base, self.store_base);
                    let preds = self.preds.clone();
                    let div = self.in_divergent;
                    b.do_while(|b| {
                        let mut g = Gen {
                            pool: pool.clone(),
                            scratch_base: sb,
                            store_base: wb,
                            preds,
                            next_pred: 2,
                            in_divergent: div,
                        };
                        g.emit(b, &body);
                        pool = g.pool;
                        b.iadd_to(i, i, 1u32);
                        b.setp_to(p, CmpOp::Lt, i, trips);
                        Guard::if_true(p)
                    });
                    self.pool = pool;
                }
                Step::Barrier => {
                    // Barriers inside potentially divergent regions are
                    // UB in the programming model; skip them there.
                    if !self.in_divergent {
                        b.barrier();
                    }
                }
            }
        }
    }
}

fn build_kernel(steps: &[Step]) -> simt_compiler::CompiledKernel {
    let mut b = KernelBuilder::new("random");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let cta = b.special(SpecialReg::CtaidX);
    let p0 = b.param(0);
    let scratch = b.param(1);
    let wr = b.param(3);
    let seed = b.imad(ty, 16u32, tx);
    let preds: Vec<simt_isa::Pred> = (0..4).map(|_| b.alloc_pred()).collect();
    let mut g = Gen {
        pool: vec![tx, ty, cta, p0, seed],
        scratch_base: scratch,
        store_base: wr,
        preds,
        next_pred: 0,
        in_divergent: false,
    };
    g.emit(&mut b, steps);
    // Sink: store a combination of the last few live registers so the
    // generated dataflow is observable.
    let lane = b.special(SpecialReg::LaneId);
    let warp = b.special(SpecialReg::WarpId);
    let lin0 = b.imad(warp, 32u32, lane);
    let lin = b.imad(cta, 1024u32, lin0);
    let off = b.shl_imm(lin, 2);
    let out = b.param(2);
    let addr = b.iadd(out, off);
    let mut acc = g.pool[g.pool.len() - 1];
    if g.pool.len() >= 2 {
        acc = b.xor(acc, g.pool[g.pool.len() - 2]);
    }
    b.store(MemSpace::Global, addr, acc, 0);
    simt_compiler::compile(b.finish())
}

fn run(ck: &simt_compiler::CompiledKernel, tech: Technique) -> (u64, u64, u64) {
    let mut mem = GlobalMemory::new();
    let scratch = mem.alloc(1024);
    let out = mem.alloc(2 * 1024 * 4);
    let wr = mem.alloc(1024);
    mem.write_slice_u32(
        scratch,
        &(0..256u32).map(|i| i.wrapping_mul(2654435761)).collect::<Vec<_>>(),
    );
    let launch = LaunchConfig::new(2u32, Dim3::two_d(16, 16)).with_params(vec![
        Value(12345),
        Value(scratch as u32),
        Value(out as u32),
        Value(wr as u32),
    ]);
    let cfg = GpuConfig::test_small(); // shadow checks on
    let r = Gpu::new(cfg, tech).launch(ck, &launch, mem);
    (
        r.memory.fingerprint(),
        r.stats.instrs_executed,
        r.stats.instrs_skipped.total() + r.stats.instrs_reused.total(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The static analysis is sound: every instruction the compiler marks
    /// skippable under a promoted launch is, per the value-level oracle,
    /// TB-redundant in *every* dynamic execution.
    #[test]
    fn static_markings_sound_on_random_kernels(
        steps in prop::collection::vec(arb_step(2), 1..10)
    ) {
        let ck = build_kernel(&steps);
        let mut mem = GlobalMemory::new();
        let scratch = mem.alloc(1024);
        let out = mem.alloc(2 * 1024 * 4);
        let wr = mem.alloc(1024);
        mem.write_slice_u32(
            scratch,
            &(0..256u32).map(|i| i.wrapping_mul(2654435761)).collect::<Vec<_>>(),
        );
        let launch = LaunchConfig::new(2u32, Dim3::two_d(16, 16)).with_params(vec![
            Value(12345),
            Value(scratch as u32),
            Value(out as u32),
            Value(wr as u32),
        ]);
        let plan = simt_compiler::LaunchPlan::new(&ck, &launch);
        let (trace, _) = gpu_sim::trace_redundancy(&ck, &launch, mem);
        // Skippable instructions may execute under divergence (where the
        // runtime never skips them — the oracle calls those occurrences
        // non-redundant, as the paper does). The soundness claim is about
        // the occurrences the runtime *would* skip: whenever every warp
        // executed the PC aligned and fully active, values must agree.
        for (pc, &skippable) in plan.skippable.iter().enumerate() {
            if !skippable {
                continue;
            }
            let bad = trace.per_pc_aligned_mismatch.get(&pc).copied().unwrap_or(0);
            prop_assert_eq!(
                bad, 0,
                "pc {} ({}) marked skippable but {} aligned occurrences disagreed",
                pc, ck.kernel.instrs[pc], bad
            );
        }
    }

    /// Marking monotonicity: launch-time finalization never *upgrades* an
    /// instruction past what the differential oracle accepts. For every
    /// launch shape — promoting or not — the `simt-verify` oracle replays
    /// the kernel per-warp and must find no instruction whose finalized
    /// marking claims TB-redundancy while its warps produced different
    /// values.
    #[test]
    fn finalize_never_upgrades_past_the_oracle(
        steps in prop::collection::vec(arb_step(2), 1..8)
    ) {
        let ck = build_kernel(&steps);
        // 2D promoted, 1D unpromoted, and a 3D shape that also passes the
        // tid.y check: promotion decisions differ across all three.
        for block in [Dim3::two_d(16, 16), Dim3::one_d(256), Dim3::three_d(8, 4, 4)] {
            let mut mem = GlobalMemory::new();
            let scratch = mem.alloc(1024);
            let out = mem.alloc(2 * 1024 * 4);
            let wr = mem.alloc(1024);
            mem.write_slice_u32(
                scratch,
                &(0..256u32).map(|i| i.wrapping_mul(2654435761)).collect::<Vec<_>>(),
            );
            let launch = LaunchConfig::new(2u32, block).with_params(vec![
                Value(12345),
                Value(scratch as u32),
                Value(out as u32),
                Value(wr as u32),
            ]);
            let report = simt_verify::oracle::check(&ck, &launch, mem);
            prop_assert!(
                report.is_clean(),
                "oracle rejected a finalized marking at TB=({},{},{}):\n{}",
                block.x, block.y, block.z, report.render()
            );
        }
    }

    /// When the launch-time dimensionality check fails, every
    /// conditionally redundant marking must collapse to vector: nothing
    /// CR-marked may stay skippable, and its finalized class must not
    /// claim redundancy.
    #[test]
    fn conditional_markings_collapse_without_promotion(
        steps in prop::collection::vec(arb_step(2), 1..8)
    ) {
        let ck = build_kernel(&steps);
        // 1D 256 threads: x check fails. 2D 12x12: non-power-of-two x.
        for block in [Dim3::one_d(256), Dim3::two_d(12, 12)] {
            let launch = LaunchConfig::new(2u32, block).with_params(vec![Value(0); 4]);
            prop_assert!(!launch.promotes_conditional_redundancy());
            let plan = simt_compiler::LaunchPlan::new(&ck, &launch);
            for (pc, &m) in ck.markings.iter().enumerate() {
                if m != simt_isa::Marking::ConditionallyRedundant {
                    continue;
                }
                prop_assert!(
                    !plan.skippable[pc],
                    "pc {} ({}) is CR-marked but stayed skippable under \
                     TB=({},{},{})",
                    pc, ck.kernel.instrs[pc], block.x, block.y, block.z
                );
                prop_assert!(
                    !plan.final_class[pc].taxonomy().is_redundant(),
                    "pc {} ({}) finalized to a redundant class without promotion",
                    pc, ck.kernel.instrs[pc]
                );
            }
        }
    }

    #[test]
    fn techniques_match_baseline_on_random_kernels(
        steps in prop::collection::vec(arb_step(2), 1..10)
    ) {
        let ck = build_kernel(&steps);
        let (base_fp, base_exec, _) = run(&ck, Technique::Base);
        for tech in [Technique::darsie(), Technique::DacIdeal, Technique::Uv] {
            let (fp, exec, elim) = run(&ck, tech.clone());
            prop_assert_eq!(fp, base_fp, "memory diverged under {}", tech.label());
            prop_assert_eq!(
                exec + elim,
                base_exec,
                "instruction conservation failed under {}",
                tech.label()
            );
        }
    }

    /// The profiler's accounting identity holds on arbitrary kernels and
    /// every technique: each SM attributes every issue slot of every
    /// cycle to exactly one cause, and the `issued` slots equal the
    /// instructions the simulator executed or reused.
    #[test]
    fn profile_identity_holds_on_random_kernels(
        steps in prop::collection::vec(arb_step(2), 1..10)
    ) {
        let ck = build_kernel(&steps);
        for tech in [Technique::Base, Technique::darsie(), Technique::Uv] {
            let mut mem = GlobalMemory::new();
            let scratch = mem.alloc(1024);
            let out = mem.alloc(2 * 1024 * 4);
            let wr = mem.alloc(1024);
            mem.write_slice_u32(
                scratch,
                &(0..256u32).map(|i| i.wrapping_mul(2654435761)).collect::<Vec<_>>(),
            );
            let launch = LaunchConfig::new(2u32, Dim3::two_d(16, 16)).with_params(vec![
                Value(12345),
                Value(scratch as u32),
                Value(out as u32),
                Value(wr as u32),
            ]);
            let cfg = GpuConfig { profile: true, ..GpuConfig::test_small() };
            let r = Gpu::new(cfg, tech.clone()).launch(&ck, &launch, mem);
            let prof = r.profile.as_ref().expect("profiling enabled");
            for sm in &prof.sms {
                prop_assert_eq!(
                    sm.check_identity(), Ok(()),
                    "slot accounting under {}", tech.label()
                );
            }
            prop_assert_eq!(
                prof.slots().get(gpu_sim::StallCause::Issued),
                r.stats.instrs_executed + r.stats.instrs_reused.total(),
                "issued slots != executed + reused under {}",
                tech.label()
            );
        }
    }
}
