//! The paper's Figure 3 worked example: the same `in[tid.x * 4 + base]`
//! read under a 1D (8,1) and a 2D (4,2) threadblock with warp size 4.
//! Shows the static compiler classes and the dynamic value-level oracle
//! agreeing: 1D thread blocks produce TB-affine (non-redundant) values,
//! 2D blocks make the whole chain redundant, with the load's result
//! unstructured-redundant.
//!
//! ```text
//! cargo run --release --example taxonomy_walkthrough
//! ```

use darsie_repro::compiler::{compile, LaunchPlan, Taxonomy};
use darsie_repro::sim::{trace_redundancy, GlobalMemory};
use simt_isa::{Dim3, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

fn main() {
    // The pseudo-assembly of Figure 3:
    //   MUL R1, tid.x, 4
    //   ADD R2, R1, #base
    //   LD  R3, MEM[R2]
    let mut b = KernelBuilder::new("fig3");
    let t = b.special(SpecialReg::TidX);
    let r1 = b.imul(t, 4u32);
    let base = b.param(0);
    let r2 = b.iadd(r1, base);
    let r3 = b.load(MemSpace::Global, r2, 0);
    let sink = b.param(1);
    let lane = b.special(SpecialReg::LaneId);
    let so = b.shl_imm(lane, 2);
    let sa = b.iadd(sink, so);
    b.store(MemSpace::Global, sa, r3, 0);
    let ck = compile(b.finish());

    println!("static markings (conditional on the TB dimensions):\n{}", ck.annotated_disassembly());

    let mut mem = GlobalMemory::new();
    let arr = mem.alloc(8 * 4);
    let sink_a = mem.alloc(32 * 4);
    mem.write_slice_u32(arr, &[7, 3, 0, 90, 55, 8, 22, 1]);

    for (label, block) in [("1D (8,1)", Dim3::one_d(8)), ("2D (4,2)", Dim3::two_d(4, 2))] {
        let launch = LaunchConfig::new(1u32, block)
            .with_warp_size(4)
            .with_params(vec![Value(arr as u32), Value(sink_a as u32)]);
        let plan = LaunchPlan::new(&ck, &launch);
        println!("--- {label}: launch check promotes = {}", plan.promoted_x);
        for (pc, i) in ck.kernel.instrs.iter().enumerate().take(5) {
            let tag = match plan.taxonomy[pc] {
                Taxonomy::Uniform => "uniform redundant",
                Taxonomy::Affine => "affine redundant",
                Taxonomy::Unstructured => "unstructured redundant",
                Taxonomy::NonRedundant => "not redundant",
            };
            println!("  {:24}  {}", format!("{i}"), tag);
        }
        let (trace, _) = trace_redundancy(&ck, &launch, mem.clone());
        println!(
            "  dynamic oracle: {}/{} warp instructions TB-redundant \
             (affine {}, unstructured {})\n",
            trace.tb_redundant, trace.executed, trace.affine, trace.unstructured
        );
    }
}
