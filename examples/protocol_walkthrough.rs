//! The paper's Figure 5, replayed step by step on the actual hardware
//! structures: three warps, a TB-redundant register `R1` written twice
//! (creating versions v1 and v2), warps skipping at their own pace, and
//! the version release once every warp has moved on.
//!
//! ```text
//! cargo run --release --example protocol_walkthrough
//! ```

use darsie::{DarsieStats, MajorityMask, ProbeOutcome, RenameState, SkipTable};

fn main() {
    let mut table = SkipTable::new(8);
    let mut rename = RenameState::new(32);
    let majority = MajorityMask::new(3);
    let mut stats = DarsieStats::default();
    let mut t = 0u64;
    let mut step = |label: &str| {
        t += 1;
        println!("T{t}: {label}");
        t
    };

    const PC0: usize = 0; // "LD R1(v1), tx"  — writes R1, version 1
    const PC2: usize = 2; // "ADD R1(v2), R1(v1), 4" — writes R1, version 2
    const R1: u8 = 1;

    // T1: warp 0 arrives at PC0 first and becomes the leader.
    let now = step("warp 0 probes PC0 -> becomes leader, allocates R1 v1");
    assert_eq!(table.probe(PC0, 1, &mut stats), ProbeOutcome::BecomeLeader);
    assert!(table.insert_leader(PC0, 1, 0, true, now, &mut stats));
    let (v1, p1) = rename.allocate_version(0, R1, &mut stats).expect("freelist has room");
    println!("     R1 v{v1} -> physical register {p1}");
    let released = table.leader_writeback(PC0, 1, 0, now);
    assert_eq!(released, 0, "nobody waiting yet");

    // T2: warp 1 probes PC0, finds the leader's value, skips.
    let now = step("warp 1 probes PC0 -> Skip (binds R1 v1), pc += 8");
    assert_eq!(table.probe(PC0, 1, &mut stats), ProbeOutcome::Skip);
    assert_eq!(rename.bind(1, R1, v1, &mut stats), Some(p1));
    table.record_pass(PC0, 1, 1, majority.mask(), now);

    // T3: warp 0 reaches PC2 and writes R1 again: version 2 is created
    // while v1 is still live (warp 2 has not consumed it).
    let now = step("warp 0 probes PC2 -> leader again, allocates R1 v2");
    assert_eq!(table.probe(PC2, 1, &mut stats), ProbeOutcome::BecomeLeader);
    assert!(table.insert_leader(PC2, 1, 0, false, now, &mut stats));
    let (v2, p2) = rename.allocate_version(0, R1, &mut stats).expect("room");
    println!("     R1 v{v2} -> physical register {p2}; live versions = {}", rename.live_versions());
    assert_eq!(rename.live_versions(), 2, "v1 and v2 coexist (Fig. 5, Trename3)");
    let _ = table.leader_writeback(PC2, 1, 0, now);

    // T4: the straggler warp 2 finally reaches PC0. Its own write count
    // for R1 is still 0, so it matches *instance 1* and reads v1 — not
    // the newer v2 (the crux of the versioning scheme).
    let now = step("warp 2 probes PC0 (instance 1) -> skips with the OLD v1");
    assert_eq!(table.probe(PC0, 1, &mut stats), ProbeOutcome::Skip);
    assert_eq!(rename.bind(2, R1, v1, &mut stats), Some(p1), "old version still readable");
    let removed = table.record_pass(PC0, 1, 2, majority.mask(), now);
    assert!(removed, "all three warps have now passed PC0; entry retires");

    // T5: warps 1 and 2 skip PC2, rebinding to v2; v1 loses its last
    // references and its physical register returns to the freelist.
    let now = step("warps 1,2 skip PC2 -> rebind to v2; v1 is released");
    assert_eq!(table.probe(PC2, 1, &mut stats), ProbeOutcome::Skip);
    rename.bind(1, R1, v2, &mut stats);
    table.record_pass(PC2, 1, 1, majority.mask(), now);
    rename.bind(2, R1, v2, &mut stats);
    rename.unbind(0, R1); // leader also moves on
    rename.bind(0, R1, v2, &mut stats);
    let done = table.record_pass(PC2, 1, 2, majority.mask(), now);
    assert!(done);
    assert_eq!(rename.live_versions(), 1, "only v2 remains");
    println!(
        "     live versions = {}, free physical registers = {}",
        rename.live_versions(),
        rename.free_regs()
    );

    println!(
        "\nFigure 5 protocol replay complete: {} probes, {} leader elections",
        stats.skip_table_probes, stats.leaders_elected
    );
}
