//! DARSIE diagnostics across the whole benchmark suite: per-workload
//! speedup, skip fraction and the protocol costs (branch-sync stalls,
//! leader waits, freelist stalls, evictions) — the quickest way to see
//! where the mechanism wins and what it pays.
//!
//! ```text
//! cargo run --release --example darsie_diag
//! ```

use gpu_sim::Technique;
use workloads::{catalog, Scale};

fn main() {
    let cfg = gpu_sim::GpuConfig {
        num_sms: 4,
        shadow_check: false,
        ..gpu_sim::GpuConfig::pascal_gtx1080ti()
    };
    let mut logs = (0f64, 0usize, 0f64, 0usize);
    println!(
        "{:8} {:>7} {:>6} {:>10} {:>9} {:>8} {:>7}",
        "bench", "speedup", "skip%", "sync-cyc", "wait-cyc", "flstall", "evict"
    );
    for w in catalog(Scale::Eval) {
        let base = w.run_unchecked(&cfg, Technique::Base);
        let d = w.run_unchecked(&cfg, Technique::darsie());
        let sp = base.cycles as f64 / d.cycles as f64;
        println!(
            "{:8} {:>7.2} {:>6.1} {:>10} {:>9} {:>8} {:>7}",
            w.abbr,
            sp,
            d.stats.skip_fraction() * 100.0,
            d.stats.darsie.branch_sync_cycles,
            d.stats.darsie.wait_for_leader_cycles,
            d.stats.darsie.freelist_stalls,
            d.stats.darsie.skip_table_evictions
        );
        if w.is_2d {
            logs.2 += sp.ln();
            logs.3 += 1;
        } else {
            logs.0 += sp.ln();
            logs.1 += 1;
        }
    }
    println!(
        "GMEAN-1D {:.3}   GMEAN-2D {:.3}",
        (logs.0 / logs.1 as f64).exp(),
        (logs.2 / logs.3 as f64).exp()
    );
}
