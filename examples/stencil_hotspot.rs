//! Domain scenario: the HotSpot thermal stencil (Rodinia) — a realistic
//! 2D workload where the `tid.x`-derived column arithmetic is redundant
//! across the warps of each (16,16) threadblock. Runs the full catalog
//! entry, then explores how the threadblock shape changes what DARSIE can
//! skip: a (256,1) flattening of the same stencil fails the launch-time
//! dimensionality check and skips nothing.
//!
//! ```text
//! cargo run --release --example stencil_hotspot
//! ```

use darsie_repro::compiler::LaunchPlan;
use darsie_repro::sim::Technique;
use workloads::{by_abbr, Scale};

fn main() {
    let w = by_abbr("HS", Scale::Test).expect("HS is in the catalog");
    let cfg = darsie_repro::sim::GpuConfig {
        shadow_check: false,
        ..darsie_repro::sim::GpuConfig::test_small()
    };

    let base = w.run(&cfg, Technique::Base);
    let dars = w.run(&cfg, Technique::darsie());
    println!("HotSpot (16,16) threadblocks:");
    println!("  BASE   {:>7} cycles", base.cycles);
    println!(
        "  DARSIE {:>7} cycles  ({:.2}x, {:.1}% of instructions skipped)",
        dars.cycles,
        base.cycles as f64 / dars.cycles as f64,
        dars.stats.skip_fraction() * 100.0
    );

    // The same kernel under a 1D launch: the conditional markings stay
    // vector, so DARSIE skips nothing — dimensionality is what creates
    // the opportunity.
    let plan_2d = LaunchPlan::new(&w.ck, &w.launch);
    let mut launch_1d = w.launch.clone();
    launch_1d.block = simt_isa::Dim3::one_d(256);
    let plan_1d = LaunchPlan::new(&w.ck, &launch_1d);
    println!(
        "\nskippable static instructions: {} under (16,16), {} under (256,1)",
        plan_2d.num_skippable(),
        plan_1d.num_skippable()
    );
    println!("launch-time promotion: 2D = {}, 1D = {}", plan_2d.promoted_x, plan_1d.promoted_x);
}
