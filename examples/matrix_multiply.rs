//! The paper's flagship workload: shared-memory tiled MatrixMul with a
//! (32,32) threadblock, run under every technique. The inner-product loop
//! contains the unstructured-redundant shared loads of Figure 6 that only
//! DARSIE can eliminate.
//!
//! ```text
//! cargo run --release --example matrix_multiply
//! ```

use darsie_repro::sim::Technique;
use workloads::{by_abbr, Scale};

fn main() {
    let w = by_abbr("MM", Scale::Test).expect("MM is in the catalog");
    println!(
        "MatrixMul: block ({},{}), grid ({},{})\n",
        w.block.x, w.block.y, w.launch.grid.x, w.launch.grid.y
    );

    let cfg = darsie_repro::sim::GpuConfig {
        shadow_check: false,
        ..darsie_repro::sim::GpuConfig::test_small()
    };
    let base = w.run(&cfg, Technique::Base);
    println!(
        "{:12} {:>9} {:>12} {:>10} {:>8}",
        "technique", "cycles", "executed", "eliminated", "speedup"
    );
    for tech in [Technique::Base, Technique::Uv, Technique::DacIdeal, Technique::darsie()] {
        // run() validates the result matrix against a CPU reference.
        let r = w.run(&cfg, tech.clone());
        println!(
            "{:12} {:>9} {:>12} {:>10} {:>7.2}x",
            tech.label(),
            r.cycles,
            r.stats.instrs_executed,
            r.stats.instrs_skipped.total() + r.stats.instrs_reused.total(),
            base.cycles as f64 / r.cycles as f64
        );
    }
    println!("\nall outputs validated against the CPU reference");
}
