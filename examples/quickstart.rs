//! Quickstart: author a 2D kernel, compile it with the DARSIE redundancy
//! pass, and simulate it on the baseline GPU and with DARSIE skipping.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use darsie_repro::compiler::{compile, LaunchPlan};
use darsie_repro::sim::{GlobalMemory, Gpu, GpuConfig, Technique};
use simt_isa::{KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

fn main() {
    // out[tid.y * 16 + tid.x] = in[tid.x] * scale  — the tid.x-derived
    // address chain repeats in every warp of a (16,16) threadblock, so
    // DARSIE executes it once per TB.
    let mut b = KernelBuilder::new("quickstart");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let ntx = b.special(SpecialReg::NtidX);
    let src = b.param(0);
    let dst = b.param(1);
    let scale = b.param(2);
    let in_off = b.shl_imm(tx, 2);
    let in_addr = b.iadd(src, in_off);
    let v = b.load(MemSpace::Global, in_addr, 0);
    let scaled = b.fmul(v, scale);
    let lin = b.imad(ty, ntx, tx);
    let cta = b.special(SpecialReg::CtaidX);
    let gidx = b.imad(cta, 256u32, lin);
    let out_off = b.shl_imm(gidx, 2);
    let out_addr = b.iadd(dst, out_off);
    b.store(MemSpace::Global, out_addr, scaled, 0);
    let kernel = b.finish();

    // Static compilation: definitely/conditionally redundant markings.
    let ck = compile(kernel);
    println!("{}", ck.annotated_disassembly());

    // Launch-time finalization for a 16x16 threadblock.
    let mut mem = GlobalMemory::new();
    let src_addr = mem.alloc(16 * 4);
    let dst_addr = mem.alloc(16 * 256 * 4);
    mem.write_slice_f32(src_addr, &(0..16).map(|i| i as f32).collect::<Vec<_>>());
    let launch = LaunchConfig::new(16u32, (16u32, 16u32)).with_params(vec![
        Value(src_addr as u32),
        Value(dst_addr as u32),
        Value::from_f32(2.5),
    ]);
    let plan = LaunchPlan::new(&ck, &launch);
    println!(
        "launch-time check passed: {}; {} of {} static instructions skippable\n",
        plan.promoted_x,
        plan.num_skippable(),
        ck.kernel.len()
    );

    // Simulate under both techniques and compare.
    let cfg = GpuConfig::test_small();
    let base = Gpu::new(cfg.clone(), Technique::Base).launch(&ck, &launch, mem.clone());
    let dars = Gpu::new(cfg, Technique::darsie()).launch(&ck, &launch, mem);
    assert_eq!(
        base.memory.read_vec_f32(dst_addr, 16 * 256),
        dars.memory.read_vec_f32(dst_addr, 16 * 256),
        "DARSIE must preserve architected state"
    );
    println!(
        "BASE:   {} cycles, {} warp instructions executed",
        base.cycles, base.stats.instrs_executed
    );
    println!(
        "DARSIE: {} cycles, {} executed, {} skipped before fetch",
        dars.cycles,
        dars.stats.instrs_executed,
        dars.stats.instrs_skipped.total()
    );
    println!(
        "speedup {:.2}x, instruction reduction {:.1}%",
        base.cycles as f64 / dars.cycles as f64,
        dars.stats.skip_fraction() * 100.0
    );
}
