//! The Section-1 survey, recomputed over this repository's corpus: what
//! fraction of applications use multi-dimensional threadblocks, and do
//! they pass DARSIE's launch-time check? (The paper surveyed 133 CUDA
//! applications on silicon — that corpus is closed, so this reproduces
//! the statistic over the Table-1 benchmarks instead.)
//!
//! ```text
//! cargo run --release --example survey
//! ```

use workloads::{catalog, Scale};

fn main() {
    let apps = catalog(Scale::Test);
    let multi: Vec<_> = apps.iter().filter(|w| w.block.dimensionality() > 1).collect();
    println!("applications surveyed:        {}", apps.len());
    println!(
        "multi-dimensional TBs:        {} ({:.0}%)   [paper: 33% overall, 60% of library-optimized]",
        multi.len(),
        multi.len() as f64 / apps.len() as f64 * 100.0
    );
    let pass = multi.iter().filter(|w| w.launch.promotes_conditional_redundancy()).count();
    println!(
        "...that pass the launch check: {pass}/{} ({:.0}%)   [paper: 127 of 128 2D kernels]",
        multi.len(),
        pass as f64 / multi.len() as f64 * 100.0
    );
    for w in &apps {
        println!(
            "  {:8} ({:4},{:4})  {}  promotes={}",
            w.abbr,
            w.block.x,
            w.block.y,
            if w.block.dimensionality() > 1 { "multi-D" } else { "1-D    " },
            w.launch.promotes_conditional_redundancy()
        );
    }
}
