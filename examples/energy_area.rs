//! The cost side of DARSIE: the Section-6.3 area estimate for the added
//! hardware, and the GPUWattch-style energy breakdown of a run, including
//! the overhead of the DARSIE structures themselves.
//!
//! ```text
//! cargo run --release --example energy_area
//! ```

use darsie_repro::energy::{AreaEstimate, AreaParams, EnergyModel};
use darsie_repro::sim::Technique;
use workloads::{by_abbr, Scale};

fn main() {
    println!("=== Section 6.3 area estimate ===");
    println!("{}\n", AreaEstimate::compute(&AreaParams::default()).report());

    let w = by_abbr("CONVTEX", Scale::Test).expect("CONVTEX is in the catalog");
    let cfg = darsie_repro::sim::GpuConfig {
        shadow_check: false,
        ..darsie_repro::sim::GpuConfig::test_small()
    };
    let model = EnergyModel::with_sms(cfg.num_sms);
    let base = w.run(&cfg, Technique::Base);
    let dars = w.run(&cfg, Technique::darsie());

    println!("=== convolutionTexture energy (pJ) ===");
    for (label, r) in [("BASE", &base), ("DARSIE", &dars)] {
        let e = model.evaluate(&r.stats);
        println!(
            "{label:7} total {:>12.0}  frontend {:>10.0}  RF {:>10.0}  exec {:>10.0}  \
             mem {:>10.0}  smem {:>8.0}  static {:>10.0}  darsie-overhead {:>6.0}",
            e.total(),
            e.frontend,
            e.register_file,
            e.execute,
            e.memory,
            e.shared_memory,
            e.static_energy,
            e.darsie_overhead
        );
    }
    println!(
        "\nenergy reduction: {:.1}% (overhead of the added structures: {:.2}% of dynamic)",
        model.reduction_percent(&base.stats, &dars.stats),
        model.evaluate(&dars.stats).darsie_overhead / model.evaluate(&dars.stats).dynamic() * 100.0
    );
}
