//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim vendors the
//! slice of the criterion 0.5 API the workspace's benches use:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. It runs each benchmark a fixed small number
//! of iterations and reports wall-clock means — enough to exercise the
//! bench binaries and print their figure artifacts, with no statistics.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: self.sample_size as u64, elapsed_ns: 0 };
        f(&mut b);
        let mean = b.elapsed_ns.checked_div(b.iters).unwrap_or(0);
        println!("bench {}/{}: {} iters, mean {} ns/iter", self.name, id, b.iters, mean);
        self
    }

    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
