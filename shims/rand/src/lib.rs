//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim vendors the
//! tiny slice of the `rand 0.8` API the workspace actually uses:
//! `SmallRng::seed_from_u64` plus `Rng::gen_range` over half-open integer
//! and float ranges. Generation is deterministic (splitmix64 seeding into
//! xorshift64*), which is exactly what the workloads want for reproducible
//! inputs. It makes no statistical-quality claims beyond "good enough to
//! exercise kernels".

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::SmallRng;
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point (only the `seed_from_u64` constructor is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Small, fast, deterministic generator (xorshift64*).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        // One splitmix round guarantees a non-zero xorshift state even for
        // seed 0 and decorrelates consecutive seeds.
        let state = splitmix64(&mut s) | 1;
        SmallRng { state }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random bits -> [0, 1), scaled into the range.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
