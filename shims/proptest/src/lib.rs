//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim vendors the
//! slice of the proptest 1.x API the workspace's property tests use:
//! `Strategy` (with `prop_map`, `prop_recursive`, `boxed`), `Just`,
//! integer-range strategies, `any::<T>()`, tuple strategies,
//! `prop::collection::{vec, hash_set}`, `prop::sample::select`, the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` / `prop_assume!` macros
//! and `ProptestConfig`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case prints its `Debug` inputs and panics;
//! - generation is a fixed deterministic PRNG sequence per test, so runs
//!   are reproducible by construction (no persistence files).

pub mod test_runner {
    /// Subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 4096 }
        }
    }

    /// A case rejected by `prop_assume!` (not a failure).
    #[derive(Debug)]
    pub struct Rejected;

    /// Deterministic generator driving all strategies (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        #[must_use]
        pub fn deterministic(seed: u64) -> Self {
            // splitmix64 round: decorrelates consecutive seeds, never 0.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            TestRng { state: (z ^ (z >> 31)) | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// Value-generation strategy (no shrinking).
    pub trait Strategy: Clone {
        type Value: fmt::Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            O: fmt::Debug,
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies. `depth` bounds nesting; the size/branch
        /// hints of real proptest are accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.clone().boxed();
            for _ in 0..depth {
                let rec = recurse(cur).boxed();
                // Each level mixes the leaf back in so generated depths
                // are distributed over [0, depth], not pinned at depth.
                cur = Union::new_weighted(vec![(1, self.clone().boxed()), (2, rec)]).boxed();
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone(), total: self.total }
        }
    }

    impl<T: fmt::Debug> Union<T> {
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        #[must_use]
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < u64::from(*w) {
                    return arm.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, i8, i16, i32, i64, isize);

    // u64/usize spans don't fit the signed-span scheme above; compute the
    // span in u128 so the full domain remains valid.
    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    ((self.start as u128) + v) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let v = (rng.next_u64() as u128) % span;
                    ((lo as u128) + v) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: fmt::Debug + Sized {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Element-count range for collection strategies: `[lo, hi]` inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = HashSet::new();
            // The element domain may be smaller than the target size;
            // bounded attempts keep this total (sizes are best-effort,
            // as in real proptest).
            for _ in 0..target.saturating_mul(16).max(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;

    /// Uniform choice from a fixed list (`prop::sample::select`).
    #[derive(Clone)]
    pub struct Select<T>(Vec<T>);

    pub fn select<T: Clone + fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty list");
        Select(items)
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest: {rejected} cases rejected by prop_assume! \
                     before {} passed",
                    config.cases
                );
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    0x70_72_6f_70u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                case += 1;
                let values =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let shown = format!("{:?}", &values);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<
                            (),
                            $crate::test_runner::Rejected,
                        > {
                            let ($($arg,)+) = values;
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => passed += 1,
                    ::std::result::Result::Ok(::std::result::Result::Err(_)) => rejected += 1,
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest case #{} (of {}) failed; inputs: {}",
                            passed + 1,
                            config.cases,
                            shown
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4i32..=4, z in any::<u8>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn recursive_depth_bounded(
            t in Just(Tree::Leaf(0)).prop_recursive(
                3, 16, 4,
                |inner| prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            )
        ) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = crate::test_runner::TestRng::deterministic(99);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn select_only_yields_listed_items() {
        let s = prop::sample::select(vec!["a", "b"]);
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == "a" || v == "b");
        }
    }
}
