//! Umbrella crate for the DARSIE (ASPLOS 2020) reproduction.
//!
//! Re-exports every layer of the stack so examples and downstream users can
//! depend on a single crate:
//!
//! * [`isa`] — the virtual SIMT instruction set and kernel builder DSL;
//! * [`compiler`] — the DARSIE redundancy compiler pass and taxonomy analyses;
//! * [`hw`] — the DARSIE hardware structures (PC skip table, renaming, ...);
//! * [`sim`] — the cycle-level GPU simulator and technique integrations;
//! * [`energy`] — the GPUWattch-style energy and area models;
//! * [`workloads`] — the 13 Table-1 benchmarks.
//!
//! See `README.md` for a walkthrough and `DESIGN.md` for the system map.

pub use darsie as hw;
pub use gpu_energy as energy;
pub use gpu_sim as sim;
pub use simt_compiler as compiler;
pub use simt_isa as isa;
pub use workloads;
